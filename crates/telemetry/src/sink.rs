//! Structured events and the pluggable sinks that consume them.
//!
//! An [`Event`] is a name plus flat key/value fields. Sinks decide what
//! happens to it: dropped ([`NullSink`]), buffered for assertions
//! ([`TestSink`]), appended as one JSON object per line ([`JsonlSink`]) or
//! rendered to stderr ([`ConsoleSink`]).

use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// One field value of a structured event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Serialize for FieldValue {
    fn serialize(&self) -> Value {
        match self {
            FieldValue::I64(v) => Value::I64(*v),
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $repr:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $repr)
            }
        }
    )*};
}

field_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A structured telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Dotted family name, e.g. `online.step` or `twinq.decision`.
    pub name: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    pub fn new(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        Self { name, fields }
    }

    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            FieldValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            FieldValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// The event as a JSON object value (`event` key first, then fields).
    pub fn to_json_value(&self, ts_ms: Option<u64>) -> Value {
        let mut map: Vec<(String, Value)> =
            vec![("event".to_string(), Value::Str(self.name.to_string()))];
        if let Some(ts) = ts_ms {
            map.push(("ts_ms".to_string(), Value::U64(ts)));
        }
        for (k, v) in &self.fields {
            map.push((k.to_string(), v.serialize()));
        }
        Value::Map(map)
    }
}

/// Consumer of telemetry events. Implementations must be cheap and must
/// not panic: sinks run inline on tuning hot paths.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);

    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event. The default sink; the `event!`/`emit` fast path
/// never even constructs an [`Event`] while this is installed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory for test assertions.
///
/// Reads come in two flavours: [`TestSink::events`] clones the whole
/// buffer (convenient, O(n) copy), while [`TestSink::take_events`] and
/// [`TestSink::with_events`] move or borrow it without cloning — prefer
/// those in loops and long property tests. [`TestSink::bounded`] caps
/// the buffer so a runaway generator can't balloon memory; records past
/// the cap are counted in [`TestSink::dropped`] instead of stored.
#[derive(Debug, Default)]
pub struct TestSink {
    events: Mutex<Vec<Event>>,
    /// `usize::MAX` (unbounded) unless built with [`TestSink::bounded`].
    limit: usize,
    dropped: AtomicU64,
}

impl TestSink {
    pub fn new() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            limit: usize::MAX,
            dropped: AtomicU64::new(0),
        }
    }

    /// A sink that stores at most `limit` events; later records are
    /// dropped (and counted) rather than grown.
    pub fn bounded(limit: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            limit,
            dropped: AtomicU64::new(0),
        }
    }

    /// All recorded events, in order (clones the buffer — prefer
    /// [`TestSink::take_events`]/[`TestSink::with_events`] on hot paths).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Move the recorded events out, leaving the buffer empty. The
    /// clone-free snapshot for single-read consumers.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Run `f` over the recorded events in place, without cloning.
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.events.lock())
    }

    /// Recorded events with the given family name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    pub fn count(&self, name: &str) -> usize {
        // LOCK-ORDER: the trailing `.count()` is Iterator::count (a name
        // collision with this method); nothing re-locks under the guard.
        self.events.lock().iter().filter(|e| e.name == name).count()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Records discarded because the buffer was at its bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Sink for TestSink {
    fn record(&self, event: &Event) {
        let mut events = self.events.lock();
        if events.len() < self.limit {
            events.push(event.clone());
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Appends one JSON object per event to a file — the run-log format the
/// `report` subcommand consumes.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    stamp_time: bool,
}

impl JsonlSink {
    /// Create (truncate) `path` and write events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
            stamp_time: true,
        })
    }

    /// Disable the `ts_ms` wall-clock field (byte-reproducible logs).
    pub fn without_timestamps(mut self) -> Self {
        self.stamp_time = false;
        self
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let ts = self.stamp_time.then(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0)
        });
        let value = event.to_json_value(ts);
        match serde_json::to_string(&value) {
            Ok(line) => {
                // Swallow-but-count I/O errors: telemetry must never take
                // down tuning, but a silently truncated log must show up
                // in the `telemetry.sink_error` counter (surfaced by the
                // `telemetry.flush` summary and `deepcat-tune report`).
                // The guard is dropped before the counter bump so no lock
                // is held while re-entering telemetry.
                let failed = {
                    let mut w = self.writer.lock();
                    writeln!(w, "{line}").is_err()
                };
                if failed {
                    crate::counter("telemetry.sink_error").inc();
                }
            }
            Err(_) => crate::counter("telemetry.sink_error").inc(),
        }
    }

    fn flush(&self) {
        if self.writer.lock().flush().is_err() {
            crate::counter("telemetry.sink_error").inc();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Renders selected event families as human-readable progress lines.
///
/// Used by the CLI binaries in place of ad-hoc `println!` calls; the
/// output format is part of the CLI contract (scripts parse it), so lines
/// are `key=value` pairs after a fixed `[family]` prefix.
pub struct ConsoleSink {
    /// Only events whose name starts with one of these prefixes print.
    /// Empty means print everything.
    prefixes: Vec<&'static str>,
    to_stderr: bool,
}

impl ConsoleSink {
    pub fn all() -> Self {
        Self {
            prefixes: Vec::new(),
            to_stderr: false,
        }
    }

    pub fn stderr() -> Self {
        Self {
            prefixes: Vec::new(),
            to_stderr: true,
        }
    }

    /// Restrict printing to event families with the given prefixes.
    pub fn with_prefixes(mut self, prefixes: Vec<&'static str>) -> Self {
        self.prefixes = prefixes;
        self
    }

    fn format(event: &Event) -> String {
        let mut line = format!("[{}]", event.name);
        for (k, v) in &event.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        line
    }
}

impl Sink for ConsoleSink {
    fn record(&self, event: &Event) {
        if !self.prefixes.is_empty() && !self.prefixes.iter().any(|p| event.name.starts_with(p)) {
            return;
        }
        let line = Self::format(event);
        if self.to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
}

/// Fan out events to several sinks (e.g. console + JSONL file).
pub struct MultiSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl MultiSink {
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}
