//! Prometheus-text-format exposition of the metrics registry and the
//! live per-session rollups.
//!
//! [`render_prometheus`] is a pure function from a [`MetricsSnapshot`]
//! to the text format (version 0.0.4): counters (`_total`), gauges,
//! fixed-bucket histograms (`_bucket{le=…}` / `_sum` / `_count`) and
//! quantile sketches rendered as summaries (`{quantile="…"}`), followed
//! by labelled per-session series. Registry snapshots iterate in sorted
//! name order and sessions ascend by id, so two snapshots of identical
//! state render byte-identically — the `--deterministic` snapshot mode
//! and the CI exposition cmp rely on exactly that.
//!
//! [`MetricsServer`] is a std-only `TcpListener` scrape endpoint (no
//! HTTP stack: it answers every request with the current snapshot and
//! closes). [`write_prometheus_snapshot`] is the file/stdout mode.

use crate::session::{MetricsSnapshot, SessionStats};
use crate::sink::FieldValue;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Quantiles rendered for every sketch (summary-style series).
const SKETCH_QUANTILES: [(&str, f64); 4] =
    [("0.5", 0.5), ("0.9", 0.9), ("0.95", 0.95), ("0.99", 0.99)];

/// Mangle a dotted metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn mangle(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Format an f64 the Prometheus way (`+Inf` / `-Inf` / `NaN` spellings).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

fn session_labels(s: &SessionStats) -> String {
    format!(
        "session=\"{}\",label=\"{}\"",
        s.session_id,
        escape_label(&s.label)
    )
}

/// Render a full snapshot in Prometheus text format. Pure and
/// deterministic: identical snapshots render to identical bytes.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.registry.counters {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m}_total {v}");
    }
    for (name, v) in &snap.registry.gauges {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {}", fmt_f64(*v));
    }
    for (name, h) in &snap.registry.histograms {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cum = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cum += count;
            let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cum}", fmt_f64(*bound));
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{m}_sum {}", fmt_f64(h.sum));
        let _ = writeln!(out, "{m}_count {}", h.count);
    }
    for (name, s) in &snap.registry.sketches {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} summary");
        let sk = s.to_sketch();
        for (label, p) in SKETCH_QUANTILES {
            if let Some(q) = sk.quantile(p) {
                let _ = writeln!(out, "{m}{{quantile=\"{label}\"}} {}", fmt_f64(q));
            }
        }
        let _ = writeln!(out, "{m}_sum {}", fmt_f64(s.sum));
        let _ = writeln!(out, "{m}_count {}", s.count);
    }

    // Per-session labelled series, ascending session id.
    let sessions = &snap.sessions.sessions;
    if !sessions.is_empty() {
        let _ = writeln!(out, "# TYPE deepcat_session_steps counter");
        for s in sessions {
            let _ = writeln!(
                out,
                "deepcat_session_steps_total{{{}}} {}",
                session_labels(s),
                s.steps
            );
        }
        let _ = writeln!(out, "# TYPE deepcat_session_failed_steps counter");
        for s in sessions {
            let _ = writeln!(
                out,
                "deepcat_session_failed_steps_total{{{}}} {}",
                session_labels(s),
                s.failed_steps
            );
        }
        let _ = writeln!(out, "# TYPE deepcat_session_reward_mean gauge");
        for s in sessions {
            if let Some(r) = s.mean_reward() {
                let _ = writeln!(
                    out,
                    "deepcat_session_reward_mean{{{}}} {}",
                    session_labels(s),
                    fmt_f64(r)
                );
            }
        }
        let _ = writeln!(out, "# TYPE deepcat_session_reward_best gauge");
        for s in sessions {
            if let Some(r) = s.best_reward {
                let _ = writeln!(
                    out,
                    "deepcat_session_reward_best{{{}}} {}",
                    session_labels(s),
                    fmt_f64(r)
                );
            }
        }
        let _ = writeln!(out, "# TYPE deepcat_session_cost_seconds gauge");
        for s in sessions {
            let cost = if s.budget_spent_s > 0.0 {
                s.budget_spent_s
            } else {
                s.eval_cost_s
            };
            let _ = writeln!(
                out,
                "deepcat_session_cost_seconds{{{}}} {}",
                session_labels(s),
                fmt_f64(cost)
            );
        }
        let _ = writeln!(out, "# TYPE deepcat_session_step_latency_seconds summary");
        for s in sessions {
            for (label, p) in SKETCH_QUANTILES {
                if let Some(q) = s.latency_quantile_s(p) {
                    let _ = writeln!(
                        out,
                        "deepcat_session_step_latency_seconds{{{},quantile=\"{label}\"}} {}",
                        session_labels(s),
                        fmt_f64(q)
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE deepcat_session_guardrail_activity counter");
        for s in sessions {
            let _ = writeln!(
                out,
                "deepcat_session_guardrail_activity_total{{{}}} {}",
                session_labels(s),
                s.guardrail_activity()
            );
        }
        let _ = writeln!(out, "# TYPE deepcat_session_consecutive_rollbacks gauge");
        for s in sessions {
            let _ = writeln!(
                out,
                "deepcat_session_consecutive_rollbacks{{{}}} {}",
                session_labels(s),
                s.consecutive_rollbacks
            );
        }
    }
    let _ = writeln!(out, "# TYPE deepcat_unattributed_events counter");
    let _ = writeln!(
        out,
        "deepcat_unattributed_events_total {}",
        snap.sessions.unattributed_events
    );
    out
}

/// Render the current global snapshot and write it to `path` — the
/// `--metrics-out` file mode. Emits a `telemetry.expose` event.
pub fn write_prometheus_snapshot(path: impl AsRef<Path>) -> std::io::Result<()> {
    let body = render_prometheus(&crate::metrics_snapshot());
    std::fs::write(path.as_ref(), body.as_bytes())?;
    crate::emit(
        "telemetry.expose",
        vec![
            ("mode", FieldValue::Str("snapshot".to_string())),
            ("bytes", FieldValue::U64(body.len() as u64)),
        ],
    );
    Ok(())
}

/// Minimal scrape endpoint: a std `TcpListener` on a background thread
/// that answers every request with the current snapshot. Stops (and
/// joins) on [`MetricsServer::shutdown`] or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9185`; port 0 picks a free port)
    /// and start serving scrapes.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("deepcat-metrics".to_string())
            .spawn(move || serve_loop(listener, stop_flag))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Answer one scrape: drain the request bytes (best-effort), write the
/// snapshot, close. Telemetry must never panic, so every error is
/// swallowed after being counted.
fn serve_one(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = render_prometheus(&crate::metrics_snapshot());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
         charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    if stream.write_all(response.as_bytes()).is_err() {
        crate::counter("telemetry.sink_error").inc();
        return;
    }
    crate::emit(
        "telemetry.expose",
        vec![
            ("mode", FieldValue::Str("scrape".to_string())),
            ("bytes", FieldValue::U64(body.len() as u64)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionAggregator;
    use crate::sink::{Event, FieldValue};
    use crate::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("telemetry.dropped").add(3);
        registry.gauge("budget.spent_s").set(12.5);
        registry.sketch("online.step_latency_s").insert(0.004);
        registry.sketch("online.step_latency_s").insert(0.006);
        let mut agg = SessionAggregator::new();
        agg.observe_event(&Event::new(
            "online.step",
            vec![
                ("reward", FieldValue::F64(-0.25)),
                ("duration_s", FieldValue::F64(0.002)),
                ("exec_time_s", FieldValue::F64(9.0)),
                ("session_id", FieldValue::U64(1)),
            ],
        ));
        MetricsSnapshot {
            registry: registry.snapshot(),
            sessions: agg.report(),
        }
    }

    #[test]
    fn render_is_deterministic_and_well_formed() {
        let snap = sample_snapshot();
        let a = render_prometheus(&snap);
        let b = render_prometheus(&snap.clone());
        assert_eq!(a, b, "two renders of one snapshot must be identical");
        assert!(a.contains("telemetry_dropped_total 3"), "{a}");
        assert!(a.contains("# TYPE budget_spent_s gauge"), "{a}");
        assert!(a.contains("online_step_latency_s{quantile=\"0.5\"}"), "{a}");
        assert!(
            a.contains("deepcat_session_steps_total{session=\"1\""),
            "{a}"
        );
        assert!(a.contains("deepcat_unattributed_events_total 0"), "{a}");
    }

    #[test]
    fn label_escaping_and_mangling() {
        assert_eq!(mangle("online.step_latency_s"), "online_step_latency_s");
        assert_eq!(mangle("9lives"), "_9lives");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
