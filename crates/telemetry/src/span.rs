//! Lightweight spans: guard timers that, on drop, record their duration
//! into a histogram (`<name>.duration_s`) and emit a structured event
//! (`<name>` with a `duration_s` field plus any attached fields).

use crate::clock::Stopwatch;
use crate::sink::FieldValue;

/// A timed region of code. Create with [`crate::span`] or the
/// [`crate::span!`] macro; the measurement happens when the guard drops.
/// Timing goes through [`Stopwatch`], so a frozen clock
/// ([`crate::freeze_clock`]) makes every span report `duration_s = 0` —
/// required for byte-reproducible event logs.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when telemetry is disabled — the guard is inert.
    start: Option<Stopwatch>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    pub(crate) fn active(name: &'static str) -> Self {
        Self {
            start: Some(Stopwatch::start()),
            name,
            fields: Vec::new(),
        }
    }

    pub(crate) fn inert(name: &'static str) -> Self {
        Self {
            start: None,
            name,
            fields: Vec::new(),
        }
    }

    /// Attach a field that will be emitted with the span's event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Attach a field to an existing guard (builder-free form).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration_s = start.elapsed_s();
        crate::observe_duration(self.name, duration_s);
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("duration_s", FieldValue::F64(duration_s)));
        crate::emit(self.name, fields);
    }
}

/// Start a span. With extra `key = value` pairs, they are attached as
/// event fields:
///
/// ```ignore
/// let _span = telemetry::span!("online.step", step = i, workload = name);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span($name)$(.field(stringify!($key), $val))+
    };
}
