//! Hierarchical spans: guard timers that, on drop, record their duration
//! into a histogram (`<name>.duration_s`) and emit a structured event
//! (`<name>` with `duration_s`, `ts_s` and `span_id`/`parent_span_id`/
//! `trace_id` identity fields, plus any attached fields).

use crate::clock::{self, Stopwatch};
use crate::sink::FieldValue;
use crate::trace::{self, SpanIds};

/// A timed region of code. Create with [`crate::span`] or the
/// [`crate::span!`] macro; the measurement happens when the guard drops.
///
/// Active guards participate in the trace hierarchy: each gets a
/// process-unique monotonically-assigned id and a parent link to the
/// span open on the same thread when it started (see [`crate::trace`]).
/// Timing goes through [`Stopwatch`], so a frozen clock
/// ([`crate::freeze_clock`]) makes every span report `duration_s = 0`
/// and `ts_s = 0` — required for byte-reproducible event logs and trace
/// exports.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when telemetry is disabled — the guard is inert.
    start: Option<Stopwatch>,
    /// `None` exactly when `start` is `None` (inert guards never touch
    /// the per-thread span stack).
    ids: Option<SpanIds>,
    /// Start time, seconds since the process trace epoch.
    ts_s: f64,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    pub(crate) fn active(name: &'static str) -> Self {
        Self {
            start: Some(Stopwatch::start()),
            ids: Some(trace::enter()),
            ts_s: clock::now_s(),
            name,
            fields: Vec::new(),
        }
    }

    pub(crate) fn inert(name: &'static str) -> Self {
        Self {
            start: None,
            ids: None,
            ts_s: 0.0,
            name,
            fields: Vec::new(),
        }
    }

    /// Attach a field that will be emitted with the span's event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Attach a field to an existing guard (builder-free form).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// This span's id (0 for an inert guard).
    pub fn span_id(&self) -> u64 {
        self.ids.map_or(0, |i| i.span_id)
    }

    /// The enclosing span's id (0 for a root span or an inert guard).
    pub fn parent_span_id(&self) -> u64 {
        self.ids.map_or(0, |i| i.parent_id)
    }

    /// The root span's id of this chain (0 for an inert guard).
    pub fn trace_id(&self) -> u64 {
        self.ids.map_or(0, |i| i.trace_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        // Unwind the span stack even if telemetry was shut down while
        // this guard was live — a stuck entry would mis-parent every
        // later span on this thread.
        if let Some(ids) = self.ids {
            trace::exit(ids.span_id);
        }
        let duration_s = start.elapsed_s();
        crate::observe_duration(self.name, duration_s);
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("duration_s", FieldValue::F64(duration_s)));
        fields.push(("ts_s", FieldValue::F64(self.ts_s)));
        if let Some(ids) = self.ids {
            fields.push(("span_id", FieldValue::U64(ids.span_id)));
            fields.push(("parent_span_id", FieldValue::U64(ids.parent_id)));
            fields.push(("trace_id", FieldValue::U64(ids.trace_id)));
        }
        crate::emit(self.name, fields);
    }
}

/// Start a span. With extra `key = value` pairs, they are attached as
/// event fields:
///
/// ```ignore
/// let _span = telemetry::span!("online.step", step = i, workload = name);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span($name)$(.field(stringify!($key), $val))+
    };
}
