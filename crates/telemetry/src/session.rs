//! Session-scoped telemetry: cheap cloneable session contexts, an
//! ambient thread-local scope that stamps every emitted event with a
//! `session_id` field, and a live aggregator that folds per-session
//! event streams into reward/cost/latency rollups.
//!
//! # Scoping model
//!
//! A [`SessionCtx`] is an id plus a human label. Entering a scope
//! ([`session_scope`] guard or the [`with_session`] closure form) pushes
//! the context onto a thread-local stack; while the scope is open, every
//! event [`crate::emit`]ted from that thread — including span-end events
//! — carries a `session_id` field. Scopes nest (innermost wins) and are
//! per-thread, so two tuning sessions running on two threads partition
//! one JSONL stream exactly.
//!
//! Session ids come from a process-global atomic counter
//! ([`SessionCtx::next`]), so single-threaded seeded runs assign the
//! same ids on every execution; [`reset_session_ids`] mirrors
//! [`crate::trace::reset_ids`] for in-process back-to-back runs.

use crate::sink::Event;
use crate::sketch::{Sketch, DEFAULT_SKETCH_ALPHA};
use serde::{Serialize, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of one tuning session: a process-unique id plus a label.
/// Cloning is cheap (`Arc<str>` label) — hand copies to worker threads,
/// replay buffers and checkpoints freely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionCtx {
    id: u64,
    label: Arc<str>,
}

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

impl SessionCtx {
    /// A context with an explicit id (multi-process setups where ids are
    /// assigned externally). Prefer [`SessionCtx::next`] in-process.
    pub fn new(id: u64, label: impl Into<Arc<str>>) -> Self {
        Self {
            id,
            label: label.into(),
        }
    }

    /// A context with the next process-unique id (1, 2, 3, …).
    pub fn next(label: impl Into<Arc<str>>) -> Self {
        Self::new(NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed), label)
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Restart session-id assignment from 1. Run-boundary hook mirroring
/// [`crate::trace::reset_ids`]: lets two in-process runs produce
/// identical id sequences for byte-comparison.
pub fn reset_session_ids() {
    NEXT_SESSION_ID.store(1, Ordering::Relaxed);
}

thread_local! {
    /// Stack of the session scopes open on this thread, innermost last.
    static SCOPE: RefCell<Vec<SessionCtx>> = const { RefCell::new(Vec::new()) };
}

/// Guard for an ambient session scope; the scope ends when it drops.
/// Out-of-order drops unwind cleanly: each guard removes its own
/// session's topmost entry, not blindly the top of the stack.
#[must_use = "the session scope ends when this guard drops"]
pub struct SessionScope {
    id: u64,
}

/// Open an ambient session scope on this thread. Every event emitted
/// until the returned guard drops carries `session_id = ctx.id()`.
pub fn session_scope(ctx: &SessionCtx) -> SessionScope {
    SCOPE.with(|s| s.borrow_mut().push(ctx.clone()));
    SessionScope { id: ctx.id }
}

impl Drop for SessionScope {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c.id == self.id) {
                stack.remove(pos);
            }
        });
    }
}

/// Run `f` inside a session scope (closure form of [`session_scope`]).
pub fn with_session<R>(ctx: &SessionCtx, f: impl FnOnce() -> R) -> R {
    let _scope = session_scope(ctx);
    f()
}

/// The innermost session scope open on this thread, if any.
pub fn current_session() -> Option<SessionCtx> {
    SCOPE.with(|s| s.borrow().last().cloned())
}

/// Fast-path id lookup for [`crate::emit`].
pub(crate) fn current_session_id() -> Option<u64> {
    SCOPE.with(|s| s.borrow().last().map(|c| c.id))
}

// ---- per-session aggregation -----------------------------------------

/// Rollup of one session's event stream: reward, cost and latency.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SessionStats {
    pub session_id: u64,
    /// Label from the session's `session.start` event (empty until seen).
    pub label: String,
    /// Events observed carrying this `session_id`.
    pub events: u64,
    /// `online.step` events (the tuning loop's unit of progress).
    pub steps: u64,
    /// Steps with `failed = true`.
    pub failed_steps: u64,
    /// Σ `reward` over steps.
    pub reward_sum: f64,
    /// Best (max) step reward; `None` until a step reports one.
    pub best_reward: Option<f64>,
    /// Σ `exec_time_s` over steps — the session's simulated eval cost.
    pub eval_cost_s: f64,
    /// Latest cumulative `spent_s` from `budget.update`.
    pub budget_spent_s: f64,
    /// Σ / max `duration_s` over steps — wall latency of the loop body.
    pub step_latency_sum_s: f64,
    pub step_latency_max_s: f64,
    /// Quantile sketch over step `duration_s` — live p50/p95/p99 latency.
    pub latency_sketch: Sketch,
    /// Quantile sketch over step `reward`.
    pub reward_sketch: Sketch,
    /// Quantile sketch over step `exec_time_s` (per-step eval cost).
    pub cost_sketch: Sketch,
    /// Guardrail activity folded from `guardrail.*` / `canary.*` /
    /// `watchdog.*` events.
    pub guardrail_vetoes: u64,
    pub guardrail_repairs: u64,
    pub rollbacks: u64,
    pub canary_aborts: u64,
    pub watchdog_trips: u64,
    /// Current / longest streak of steps that each carried a rollback.
    pub consecutive_rollbacks: u64,
    pub max_consecutive_rollbacks: u64,
    /// `alert.raised` / `alert.resolved` events attributed to the session.
    pub alerts_raised: u64,
    pub alerts_resolved: u64,
    /// Supervisor restarts granted to this session (`supervisor.restart`).
    pub restarts: u64,
    /// The supervisor quarantined this session (`supervisor.quarantined`).
    pub quarantined: bool,
    /// Control messages bounced off the session's bounded mailbox
    /// (`mailbox.rejected`).
    pub mailbox_rejections: u64,
    /// Virtual time from drain start to this session's checkpoint-and-stop
    /// (`supervisor.drained`); `None` if the session was never drained.
    pub drain_ms: Option<f64>,
    /// A rollback was observed since the previous `online.step` (streak
    /// bookkeeping for `consecutive_rollbacks`).
    rollback_since_last_step: bool,
}

impl SessionStats {
    fn new(session_id: u64) -> Self {
        Self {
            session_id,
            label: String::new(),
            events: 0,
            steps: 0,
            failed_steps: 0,
            reward_sum: 0.0,
            best_reward: None,
            eval_cost_s: 0.0,
            budget_spent_s: 0.0,
            step_latency_sum_s: 0.0,
            step_latency_max_s: 0.0,
            latency_sketch: Sketch::new(DEFAULT_SKETCH_ALPHA),
            reward_sketch: Sketch::new(DEFAULT_SKETCH_ALPHA),
            cost_sketch: Sketch::new(DEFAULT_SKETCH_ALPHA),
            guardrail_vetoes: 0,
            guardrail_repairs: 0,
            rollbacks: 0,
            canary_aborts: 0,
            watchdog_trips: 0,
            consecutive_rollbacks: 0,
            max_consecutive_rollbacks: 0,
            alerts_raised: 0,
            alerts_resolved: 0,
            restarts: 0,
            quarantined: false,
            mailbox_rejections: 0,
            drain_ms: None,
            rollback_since_last_step: false,
        }
    }

    /// Mean step reward (`None` before the first step).
    pub fn mean_reward(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.reward_sum / self.steps as f64)
    }

    /// Mean step wall latency (`None` before the first step).
    pub fn mean_step_latency_s(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.step_latency_sum_s / self.steps as f64)
    }

    /// Sketch-backed step-latency quantile (`None` before the first
    /// step with a recorded duration).
    pub fn latency_quantile_s(&self, p: f64) -> Option<f64> {
        self.latency_sketch.quantile(p)
    }

    /// Sketch-backed step-reward quantile.
    pub fn reward_quantile(&self, p: f64) -> Option<f64> {
        self.reward_sketch.quantile(p)
    }

    /// Sketch-backed per-step eval-cost quantile.
    pub fn cost_quantile_s(&self, p: f64) -> Option<f64> {
        self.cost_sketch.quantile(p)
    }

    /// Total guardrail interventions (vetoes, repairs, rollbacks,
    /// canary aborts, watchdog trips) — the `top` guardrail column.
    pub fn guardrail_activity(&self) -> u64 {
        self.guardrail_vetoes
            + self.guardrail_repairs
            + self.rollbacks
            + self.canary_aborts
            + self.watchdog_trips
    }
}

/// Point-in-time per-session rollup table (see [`SessionAggregator`]).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct SessionReport {
    /// One row per session id, ascending.
    pub sessions: Vec<SessionStats>,
    /// Events seen with no `session_id` field.
    pub unattributed_events: u64,
}

impl SessionReport {
    pub fn get(&self, session_id: u64) -> Option<&SessionStats> {
        self.sessions.iter().find(|s| s.session_id == session_id)
    }

    /// Render as an aligned text table, one session per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<16} {:>7} {:>6} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>6} {:>4} {:>5} {:>4} {:>8}\n",
            "session",
            "label",
            "events",
            "steps",
            "failed",
            "mean_rew",
            "best_rew",
            "cost_s",
            "p50_ms",
            "p95_ms",
            "guard",
            "rst",
            "quar",
            "rej",
            "drain_ms"
        ));
        for s in &self.sessions {
            let label = if s.label.is_empty() { "?" } else { &s.label };
            out.push_str(&format!(
                "{:<8} {:<16} {:>7} {:>6} {:>7} {:>10} {:>10} {:>10.1} {:>9} {:>9} {:>6} {:>4} {:>5} {:>4} {:>8}\n",
                s.session_id,
                label,
                s.events,
                s.steps,
                s.failed_steps,
                s.mean_reward()
                    .map_or("-".to_string(), |r| format!("{r:.4}")),
                s.best_reward.map_or("-".to_string(), |r| format!("{r:.4}")),
                if s.budget_spent_s > 0.0 {
                    s.budget_spent_s
                } else {
                    s.eval_cost_s
                },
                s.latency_quantile_s(0.5)
                    .map_or("-".to_string(), |l| format!("{:.2}", l * 1e3)),
                s.latency_quantile_s(0.95)
                    .map_or("-".to_string(), |l| format!("{:.2}", l * 1e3)),
                s.guardrail_activity(),
                s.restarts,
                if s.quarantined { "yes" } else { "-" },
                s.mailbox_rejections,
                s.drain_ms.map_or("-".to_string(), |d| format!("{d:.0}")),
            ));
        }
        out.push_str(&format!(
            "{} session(s), {} unattributed event(s)\n",
            self.sessions.len(),
            self.unattributed_events
        ));
        out
    }
}

/// Streaming folder from events to [`SessionStats`]. Feed it live
/// [`Event`]s ([`SessionAggregator::observe_event`]) or parsed JSONL
/// lines ([`SessionAggregator::observe_value`]) — `deepcat-tune report
/// --by-session` and the in-process [`crate::session_report`] share this
/// exact fold, so offline and live rollups agree.
#[derive(Debug, Default)]
pub struct SessionAggregator {
    sessions: BTreeMap<u64, SessionStats>,
    unattributed: u64,
}

/// The field views the fold needs, abstracted over live events and
/// parsed JSONL lines.
struct EventView<'a> {
    name: &'a str,
    session_id: Option<u64>,
    reward: Option<f64>,
    exec_time_s: Option<f64>,
    duration_s: Option<f64>,
    spent_s: Option<f64>,
    failed: Option<bool>,
    label: Option<&'a str>,
    drain_ms: Option<f64>,
}

impl SessionAggregator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one live event in.
    pub fn observe_event(&mut self, event: &Event) {
        self.fold(EventView {
            name: event.name,
            session_id: event.u64("session_id"),
            reward: event.f64("reward"),
            exec_time_s: event.f64("exec_time_s"),
            duration_s: event.f64("duration_s"),
            spent_s: event.f64("spent_s"),
            failed: event.bool("failed"),
            label: event.str("label"),
            drain_ms: event.f64("drain_ms"),
        });
    }

    /// Fold one parsed JSONL log line in (the `report` path). Lines that
    /// are not event objects are ignored.
    pub fn observe_value(&mut self, value: &Value) {
        let Some(name) = value.get("event").and_then(Value::as_str) else {
            return;
        };
        self.fold(EventView {
            name,
            session_id: value.get("session_id").and_then(Value::as_u64),
            reward: value.get("reward").and_then(Value::as_f64),
            exec_time_s: value.get("exec_time_s").and_then(Value::as_f64),
            duration_s: value.get("duration_s").and_then(Value::as_f64),
            spent_s: value.get("spent_s").and_then(Value::as_f64),
            failed: value.get("failed").and_then(Value::as_bool),
            label: value.get("label").and_then(Value::as_str),
            drain_ms: value.get("drain_ms").and_then(Value::as_f64),
        });
    }

    fn fold(&mut self, view: EventView<'_>) {
        // Pipeline meta-events (`telemetry.flush`, shard overflow
        // reports, …) describe the pipeline itself, not session work;
        // they are recorded straight to the sink and never reach the
        // live fold, so the offline fold skips them too.
        if view.name.starts_with("telemetry.") {
            return;
        }
        let Some(id) = view.session_id else {
            self.unattributed += 1;
            return;
        };
        let stats = self
            .sessions
            .entry(id)
            .or_insert_with(|| SessionStats::new(id));
        stats.events += 1;
        match view.name {
            "session.start" => {
                if let Some(label) = view.label {
                    stats.label = label.to_string();
                }
            }
            "online.step" => {
                stats.steps += 1;
                if view.failed == Some(true) {
                    stats.failed_steps += 1;
                }
                if let Some(r) = view.reward {
                    stats.reward_sum += r;
                    stats.best_reward = Some(stats.best_reward.map_or(r, |b| b.max(r)));
                    stats.reward_sketch.insert(r);
                }
                if let Some(t) = view.exec_time_s {
                    stats.eval_cost_s += t;
                    stats.cost_sketch.insert(t);
                }
                if let Some(d) = view.duration_s {
                    stats.step_latency_sum_s += d;
                    stats.step_latency_max_s = stats.step_latency_max_s.max(d);
                    stats.latency_sketch.insert(d);
                }
                // A step that carried a rollback extends the streak; a
                // clean step breaks it.
                if stats.rollback_since_last_step {
                    stats.consecutive_rollbacks += 1;
                    stats.max_consecutive_rollbacks = stats
                        .max_consecutive_rollbacks
                        .max(stats.consecutive_rollbacks);
                } else {
                    stats.consecutive_rollbacks = 0;
                }
                stats.rollback_since_last_step = false;
            }
            "budget.update" => {
                if let Some(s) = view.spent_s {
                    stats.budget_spent_s = stats.budget_spent_s.max(s);
                }
            }
            "guardrail.veto" => stats.guardrail_vetoes += 1,
            "guardrail.repaired" => stats.guardrail_repairs += 1,
            "guardrail.rollback" => {
                stats.rollbacks += 1;
                stats.rollback_since_last_step = true;
            }
            "canary.abort" => stats.canary_aborts += 1,
            "watchdog.triggered" => stats.watchdog_trips += 1,
            "alert.raised" => stats.alerts_raised += 1,
            "alert.resolved" => stats.alerts_resolved += 1,
            "supervisor.restart" => stats.restarts += 1,
            "supervisor.quarantined" => stats.quarantined = true,
            "mailbox.rejected" => stats.mailbox_rejections += 1,
            "supervisor.drained" => {
                if let Some(d) = view.drain_ms {
                    stats.drain_ms = Some(d);
                }
            }
            _ => {}
        }
    }

    /// Snapshot the rollups accumulated so far.
    pub fn report(&self) -> SessionReport {
        SessionReport {
            sessions: self.sessions.values().cloned().collect(),
            unattributed_events: self.unattributed,
        }
    }

    /// Sessions folded so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Drop all accumulated state (install boundaries).
    pub fn reset(&mut self) {
        self.sessions.clear();
        self.unattributed = 0;
    }
}

/// One coherent observation point: the metrics registry plus the live
/// per-session rollups, taken together.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    pub registry: crate::RegistrySnapshot,
    pub sessions: SessionReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FieldValue;

    fn step_event(session: u64, reward: f64, failed: bool) -> Event {
        Event::new(
            "online.step",
            vec![
                ("reward", FieldValue::F64(reward)),
                ("exec_time_s", FieldValue::F64(10.0)),
                ("duration_s", FieldValue::F64(0.002)),
                ("failed", FieldValue::Bool(failed)),
                ("session_id", FieldValue::U64(session)),
            ],
        )
    }

    #[test]
    fn scopes_nest_and_unwind() {
        assert_eq!(current_session(), None);
        let a = SessionCtx::new(7, "outer");
        let b = SessionCtx::new(9, "inner");
        let ga = session_scope(&a);
        assert_eq!(current_session_id(), Some(7));
        {
            let _gb = session_scope(&b);
            assert_eq!(current_session_id(), Some(9));
        }
        assert_eq!(current_session_id(), Some(7));
        drop(ga);
        assert_eq!(current_session(), None);
    }

    #[test]
    fn out_of_order_drop_removes_the_right_entry() {
        let a = SessionCtx::new(1, "a");
        let b = SessionCtx::new(2, "b");
        let ga = session_scope(&a);
        let gb = session_scope(&b);
        drop(ga); // drops the *outer* guard first
        assert_eq!(current_session_id(), Some(2), "inner scope survives");
        drop(gb);
        assert_eq!(current_session(), None);
    }

    #[test]
    fn with_session_restores_on_return() {
        let ctx = SessionCtx::new(3, "w");
        let id = with_session(&ctx, || current_session_id());
        assert_eq!(id, Some(3));
        assert_eq!(current_session(), None);
    }

    #[test]
    fn aggregator_folds_steps_and_budget() {
        let mut agg = SessionAggregator::new();
        agg.observe_event(&Event::new(
            "session.start",
            vec![
                ("label", FieldValue::Str("DeepCAT".into())),
                ("session_id", FieldValue::U64(1)),
            ],
        ));
        agg.observe_event(&step_event(1, -0.5, false));
        agg.observe_event(&step_event(1, -0.1, true));
        agg.observe_event(&step_event(2, -0.9, false));
        agg.observe_event(&Event::new(
            "budget.update",
            vec![
                ("spent_s", FieldValue::F64(42.0)),
                ("session_id", FieldValue::U64(1)),
            ],
        ));
        agg.observe_event(&Event::new("recovery.checkpoint", vec![]));
        let report = agg.report();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.unattributed_events, 1);
        let s1 = report.get(1).unwrap();
        assert_eq!(s1.label, "DeepCAT");
        assert_eq!(s1.steps, 2);
        assert_eq!(s1.failed_steps, 1);
        assert_eq!(s1.best_reward, Some(-0.1));
        assert!((s1.mean_reward().unwrap() + 0.3).abs() < 1e-12);
        assert_eq!(s1.eval_cost_s, 20.0);
        assert_eq!(s1.budget_spent_s, 42.0);
        let s2 = report.get(2).unwrap();
        assert_eq!(s2.steps, 1);
        assert_eq!(s2.label, "");
        let table = report.render();
        assert!(table.contains("DeepCAT"), "{table}");
        assert!(table.contains("1 unattributed"), "{table}");
    }

    #[test]
    fn aggregator_folds_supervisor_events() {
        let mut agg = SessionAggregator::new();
        agg.observe_event(&Event::new(
            "supervisor.restart",
            vec![
                ("attempt", FieldValue::U64(1)),
                ("backoff_ms", FieldValue::U64(2000)),
                ("session_id", FieldValue::U64(4)),
            ],
        ));
        agg.observe_event(&Event::new(
            "supervisor.restart",
            vec![("session_id", FieldValue::U64(4))],
        ));
        agg.observe_event(&Event::new(
            "mailbox.rejected",
            vec![
                ("cap", FieldValue::U64(8)),
                ("session_id", FieldValue::U64(4)),
            ],
        ));
        agg.observe_event(&Event::new(
            "supervisor.quarantined",
            vec![
                ("restarts", FieldValue::U64(3)),
                ("session_id", FieldValue::U64(4)),
            ],
        ));
        agg.observe_event(&Event::new(
            "supervisor.drained",
            vec![
                ("drain_ms", FieldValue::U64(12)),
                ("session_id", FieldValue::U64(5)),
            ],
        ));
        let report = agg.report();
        let s4 = report.get(4).unwrap();
        assert_eq!(s4.restarts, 2);
        assert!(s4.quarantined);
        assert_eq!(s4.mailbox_rejections, 1);
        assert_eq!(s4.drain_ms, None);
        let s5 = report.get(5).unwrap();
        assert_eq!(s5.drain_ms, Some(12.0));
        assert!(!s5.quarantined);
        let table = report.render();
        assert!(table.contains("yes"), "{table}");
    }

    #[test]
    fn observe_value_matches_observe_event() {
        let ev = step_event(5, -0.25, false);
        let mut live = SessionAggregator::new();
        live.observe_event(&ev);
        let mut offline = SessionAggregator::new();
        offline.observe_value(&ev.to_json_value(None));
        assert_eq!(live.report(), offline.report());
    }
}
