//! Mergeable relative-error quantile sketches (DDSketch-style).
//!
//! The fixed-bucket [`crate::Histogram`] answers "how many samples fell
//! in each predeclared range" exactly, but its quantiles are linear
//! interpolations inside whatever bucket the rank lands in — useless in
//! the tail unless the layout was guessed right up front. [`Sketch`]
//! instead uses logarithmic buckets derived from a configured relative
//! accuracy `α`: every quantile estimate `q̂` satisfies
//! `|q̂ − q| ≤ α·|q|` for the true rank value `q`, at any scale, with no
//! layout to pick.
//!
//! # Determinism and merge invariants
//!
//! * Bucket keys are a pure function of the value and `α`
//!   (`key(v) = ⌈ln|v| / ln γ⌉` with `γ = (1+α)/(1−α)`), so two
//!   sketches fed the same multiset of values are equal regardless of
//!   insertion order.
//! * [`Sketch::merge`] adds per-key counts: while both operands are
//!   within their bucket budget it is exactly associative and
//!   commutative, which is what lets per-shard and per-session sketches
//!   fold into one fleet view without coordination.
//! * Memory is bounded: each store keeps at most `max_buckets` buckets;
//!   past that the smallest-magnitude buckets collapse into the lowest
//!   retained one (tail accuracy — the interesting end — is preserved).
//! * Non-finite samples are rejected and counted, never stored —
//!   mirroring the repo-wide non-finite-rejection invariant.
//!
//! [`ConcurrentSketch`] wraps a small fixed set of striped sketches so
//! concurrent writers in the sharded pipeline never contend on one lock;
//! a snapshot merges the stripes, which by the invariants above yields
//! the same sketch a single-threaded run would have produced.

use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default relative accuracy: 1% relative error on any quantile.
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// Default per-store bucket budget. With α = 1% one store spans ~40
/// orders of magnitude before any collapse.
pub const DEFAULT_SKETCH_MAX_BUCKETS: usize = 4096;

/// A deterministic, bounded-memory quantile sketch with relative-error
/// guarantee `α` (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Sketch {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    max_buckets: usize,
    /// Buckets for positive values, keyed by `⌈ln v / ln γ⌉`.
    pos: BTreeMap<i32, u64>,
    /// Buckets for negative values, keyed on the magnitude `|v|`.
    neg: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// NaN / ±inf samples rejected (counted, never stored).
    rejected_non_finite: u64,
    /// Collapse operations performed (0 ⇒ merge was exact so far).
    collapses: u64,
}

impl Sketch {
    /// A sketch with relative accuracy `alpha` (must be in `(0, 1)`).
    pub fn new(alpha: f64) -> Self {
        Self::with_max_buckets(alpha, DEFAULT_SKETCH_MAX_BUCKETS)
    }

    /// A sketch with an explicit per-store bucket budget.
    pub fn with_max_buckets(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "sketch alpha must be in (0, 1)");
        assert!(max_buckets >= 2, "sketch needs at least two buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            max_buckets,
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected_non_finite: 0,
            collapses: 0,
        }
    }

    /// Bucket key for a strictly positive magnitude.
    fn key_for(&self, magnitude: f64) -> i32 {
        let k = (magnitude.ln() / self.ln_gamma).ceil();
        if k < i32::MIN as f64 {
            i32::MIN
        } else if k > i32::MAX as f64 {
            i32::MAX
        } else {
            k as i32
        }
    }

    /// Insert one sample. Non-finite values are rejected and counted.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected_non_finite += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v == 0.0 {
            self.zero += 1;
        } else if v > 0.0 {
            let k = self.key_for(v);
            *self.pos.entry(k).or_insert(0) += 1;
            Self::collapse(&mut self.pos, self.max_buckets, &mut self.collapses);
        } else {
            let k = self.key_for(-v);
            *self.neg.entry(k).or_insert(0) += 1;
            Self::collapse(&mut self.neg, self.max_buckets, &mut self.collapses);
        }
    }

    /// Fold the smallest-magnitude buckets into the lowest retained key
    /// until the store is back within budget.
    fn collapse(store: &mut BTreeMap<i32, u64>, max_buckets: usize, collapses: &mut u64) {
        while store.len() > max_buckets {
            let Some((&lowest, _)) = store.iter().next() else {
                return;
            };
            let Some(n) = store.remove(&lowest) else {
                return;
            };
            if let Some((_, dst)) = store.iter_mut().next() {
                *dst += n;
                *collapses += 1;
            }
        }
    }

    /// Merge another sketch of the **same α** into this one. Bucket
    /// counts, extrema and totals merge exactly associatively and
    /// commutatively while both stores stay within budget; the tracked
    /// f64 `sum` agrees only up to addition-order rounding.
    pub fn merge(&mut self, other: &Sketch) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge sketches with different alpha"
        );
        for (&k, &n) in &other.pos {
            *self.pos.entry(k).or_insert(0) += n;
        }
        Self::collapse(&mut self.pos, self.max_buckets, &mut self.collapses);
        for (&k, &n) in &other.neg {
            *self.neg.entry(k).or_insert(0) += n;
        }
        Self::collapse(&mut self.neg, self.max_buckets, &mut self.collapses);
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rejected_non_finite += other.rejected_non_finite;
        self.collapses += other.collapses;
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Buckets currently held across both stores.
    pub fn bucket_count(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    pub fn rejected_non_finite(&self) -> u64 {
        self.rejected_non_finite
    }

    /// Midpoint estimate for a bucket key; within `α` relative error of
    /// every magnitude the bucket covers.
    fn estimate(&self, key: i32) -> f64 {
        (key as f64 * self.ln_gamma).exp() * 2.0 / (self.gamma + 1.0)
    }

    /// Estimate the `p`-quantile. `None` while empty; `p ≤ 0` yields the
    /// exact min, `p ≥ 1` the exact max; estimates are clamped into
    /// `[min, max]` (which only tightens the relative-error bound).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 1.0 {
            return Some(self.max);
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        // Ascending value order: most-negative first (descending key over
        // the magnitude-keyed negative store), then zeros, then positives.
        for (&k, &n) in self.neg.iter().rev() {
            cum += n;
            if cum >= rank {
                return Some((-self.estimate(k)).clamp(self.min, self.max));
            }
        }
        cum += self.zero;
        if cum >= rank {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for (&k, &n) in self.pos.iter() {
            cum += n;
            if cum >= rank {
                return Some(self.estimate(k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Serializable point-in-time copy.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            alpha: self.alpha,
            count: self.count,
            zero: self.zero,
            sum: self.sum,
            min: if self.count > 0 { self.min } else { 0.0 },
            max: if self.count > 0 { self.max } else { 0.0 },
            rejected_non_finite: self.rejected_non_finite,
            collapses: self.collapses,
            neg: self.neg.iter().map(|(&k, &n)| (k, n)).collect(),
            pos: self.pos.iter().map(|(&k, &n)| (k, n)).collect(),
        }
    }
}

impl Serialize for Sketch {
    fn serialize(&self) -> Value {
        self.snapshot().serialize()
    }
}

/// Point-in-time copy of a [`Sketch`]; the bucket stores are sorted
/// `(key, count)` pairs. Snapshots of equal-α sketches can be merged.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SketchSnapshot {
    pub alpha: f64,
    pub count: u64,
    pub zero: u64,
    pub sum: f64,
    /// Exact observed min/max (0.0 while empty).
    pub min: f64,
    pub max: f64,
    pub rejected_non_finite: u64,
    pub collapses: u64,
    pub neg: Vec<(i32, u64)>,
    pub pos: Vec<(i32, u64)>,
}

impl SketchSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Rebuild a live sketch from this snapshot (for folding and
    /// quantile queries on merged data).
    pub fn to_sketch(&self) -> Sketch {
        let mut s = Sketch::new(self.alpha);
        s.zero = self.zero;
        s.count = self.count;
        s.sum = self.sum;
        s.min = if self.count > 0 {
            self.min
        } else {
            f64::INFINITY
        };
        s.max = if self.count > 0 {
            self.max
        } else {
            f64::NEG_INFINITY
        };
        s.rejected_non_finite = self.rejected_non_finite;
        s.collapses = self.collapses;
        s.neg = self.neg.iter().copied().collect();
        s.pos = self.pos.iter().copied().collect();
        s
    }

    /// Estimate the `p`-quantile (see [`Sketch::quantile`]).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.to_sketch().quantile(p)
    }

    /// Merge another snapshot of the same α into this one.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        let mut s = self.to_sketch();
        s.merge(&other.to_sketch());
        *self = s.snapshot();
    }
}

// ---- concurrent wrapper ----------------------------------------------

/// Stripes per [`ConcurrentSketch`]; power of two so a stripe index is a
/// mask away.
const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's assigned stripe (`usize::MAX` = unassigned).
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin stripe assignment, fixed per thread on first use.
fn stripe_index() -> usize {
    STRIPE.with(|c| {
        let cached = c.get();
        if cached != usize::MAX {
            return cached;
        }
        let idx = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
        c.set(idx);
        idx
    })
}

/// A sketch writable from many threads without a shared lock: each
/// thread inserts into its own stripe (an uncontended mutex), and
/// [`ConcurrentSketch::snapshot`] merges the stripes. Because sketch
/// merge is order-independent, the snapshot equals what one sequential
/// sketch over the same samples would hold.
pub struct ConcurrentSketch {
    alpha: f64,
    stripes: Vec<Mutex<Sketch>>,
}

impl ConcurrentSketch {
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha,
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Sketch::new(alpha)))
                .collect(),
        }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Insert one sample into this thread's stripe.
    pub fn insert(&self, v: f64) {
        if let Some(stripe) = self.stripes.get(stripe_index()) {
            stripe.lock().insert(v);
        }
    }

    /// Total samples across stripes (locks each stripe briefly).
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().count()).sum()
    }

    /// Merge every stripe into one sketch, in stripe order.
    pub fn merged(&self) -> Sketch {
        let mut out = Sketch::new(self.alpha);
        for stripe in &self.stripes {
            let guard = stripe.lock();
            // GUARD-EMIT: merge folds bucket maps into the local `out` —
            // LOCK-ORDER: no emission, no locks; one stripe held at a time.
            out.merge(&guard);
        }
        out
    }

    /// Serializable snapshot of the merged stripes.
    pub fn snapshot(&self) -> SketchSnapshot {
        self.merged().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_exact_ranks_within_alpha() {
        let mut s = Sketch::new(0.01);
        let mut vals: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37).collect();
        for &v in &vals {
            s.insert(v);
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let rank = ((p * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = s.quantile(p).unwrap();
            assert!(
                (est - exact).abs() <= 0.01 * exact.abs() + 1e-12,
                "p={p}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn negative_and_zero_samples_order_correctly() {
        let mut s = Sketch::new(0.01);
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 5);
        let p10 = s.quantile(0.1).unwrap();
        assert!((p10 + 10.0).abs() <= 0.1 + 1e-9, "{p10}");
        let med = s.quantile(0.5).unwrap();
        assert_eq!(med, 0.0);
        assert_eq!(s.quantile(1.0), Some(10.0));
        assert_eq!(s.quantile(0.0), Some(-10.0));
    }

    #[test]
    fn non_finite_rejected_and_counted() {
        let mut s = Sketch::new(0.05);
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        s.insert(f64::NEG_INFINITY);
        s.insert(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.rejected_non_finite(), 3);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn merge_equals_sequential_insertion() {
        let mut all = Sketch::new(0.02);
        let mut a = Sketch::new(0.02);
        let mut b = Sketch::new(0.02);
        for i in 0..500 {
            let v = (i as f64 - 250.0) * 1.3;
            all.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        // Bucket stores, counts and extrema merge exactly; the f64 sum
        // only agrees up to addition-order rounding.
        let mut merged = a.snapshot();
        let mut sequential = all.snapshot();
        assert!((merged.sum - sequential.sum).abs() <= 1e-9 * sequential.sum.abs().max(1.0));
        merged.sum = 0.0;
        sequential.sum = 0.0;
        assert_eq!(merged, sequential);
    }

    #[test]
    fn collapse_bounds_memory() {
        let mut s = Sketch::with_max_buckets(0.01, 8);
        for i in 0..60 {
            s.insert(2.0f64.powi(i));
        }
        assert!(s.bucket_count() <= 8, "got {}", s.bucket_count());
        assert_eq!(s.count(), 60);
        // Tail accuracy survives the collapse of the small buckets.
        let est = s.quantile(0.99).unwrap();
        let exact = 2.0f64.powi(59);
        assert!((est - exact).abs() <= 0.01 * exact + 1e-6);
    }

    #[test]
    fn snapshot_roundtrip_and_merge() {
        let mut a = Sketch::new(0.01);
        let mut b = Sketch::new(0.01);
        for i in 1..=100 {
            a.insert(i as f64);
            b.insert(-(i as f64));
        }
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        a.merge(&b);
        assert_eq!(sa, a.snapshot());
        assert_eq!(sa.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn concurrent_sketch_matches_sequential() {
        let cs = ConcurrentSketch::new(0.01);
        let mut seq = Sketch::new(0.01);
        for i in 1..=200 {
            let v = i as f64 * 0.5;
            cs.insert(v);
            seq.insert(v);
        }
        assert_eq!(cs.snapshot(), seq.snapshot());
        assert_eq!(cs.count(), 200);
    }
}
