//! Hierarchical tracing: span identity, the per-thread span stack, the
//! Chrome Trace Event Format exporter, and the self-time profiler.
//!
//! Every active [`crate::SpanGuard`] is assigned a process-unique,
//! monotonically increasing span id and linked to the span that was open
//! on the same thread when it started (its parent). The chain up to the
//! root span is one *trace*; the root's id doubles as the trace id. Ids
//! come from a single atomic counter, so a single-threaded seeded run
//! assigns the exact same ids on every execution — combined with the
//! frozen clock ([`crate::freeze_clock`]), `--deterministic` trace
//! exports are byte-identical across same-seed runs.
//!
//! Downstream consumers work on [`SpanRecord`]s (one per finished span,
//! reconstructable from the span's emitted event):
//!
//! * [`chrome_trace_json`] renders records as a Chrome Trace Event
//!   Format array — load it in `chrome://tracing` or Perfetto;
//! * [`Profiler`] aggregates total vs. self time per span name into a
//!   [`ProfileReport`] attribution table (`deepcat-tune profile`);
//! * [`ChromeTraceSink`] captures span events live and writes the trace
//!   file on flush, for runs that skip the JSONL intermediary.

use crate::sink::{Event, Sink};
use parking_lot::Mutex;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of one active span: its own id plus its links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanIds {
    /// Process-unique id, assigned in start order (1, 2, 3, …).
    pub span_id: u64,
    /// Id of the span open on this thread when this one started; 0 for
    /// a root span.
    pub parent_id: u64,
    /// Id of the root span of this chain (== `span_id` for roots).
    pub trace_id: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of `(span_id, trace_id)` for the spans currently open on
    /// this thread, in start order.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Assign the next span id and push it onto this thread's span stack.
pub(crate) fn enter() -> SpanIds {
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent_id, trace_id) = stack.last().map_or((0, span_id), |&(pid, tid)| (pid, tid));
        stack.push((span_id, trace_id));
        SpanIds {
            span_id,
            parent_id,
            trace_id,
        }
    })
}

/// Remove `span_id` from this thread's span stack. Searches from the top
/// so out-of-order guard drops (`std::mem::drop` reordering, guards moved
/// across scopes) unwind cleanly instead of panicking or mis-parenting
/// later spans: parent links were fixed at [`enter`] time.
pub(crate) fn exit(span_id: u64) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&(id, _)| id == span_id) {
            stack.remove(pos);
        }
    });
}

/// Number of spans currently open on this thread (0 while telemetry is
/// disabled — inert guards never touch the stack).
pub fn stack_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Restart span-id assignment from 1. Test/run-boundary hook: lets two
/// in-process runs produce identical id sequences for byte-comparison.
/// Racing with live span creation only perturbs ids, never correctness.
pub fn reset_ids() {
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
}

/// One finished span, as reconstructed from its telemetry event.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SpanRecord {
    pub name: String,
    pub span_id: u64,
    pub parent_id: u64,
    pub trace_id: u64,
    /// Start time, seconds since the process trace epoch (0.0 frozen).
    pub ts_s: f64,
    pub duration_s: f64,
}

impl SpanRecord {
    /// Reconstruct a span record from a span's end event. Returns `None`
    /// for plain (non-span) events — those carry no `span_id`.
    pub fn from_event(event: &Event) -> Option<Self> {
        let span_id = event.u64("span_id")?;
        Some(Self {
            name: event.name.to_string(),
            span_id,
            parent_id: event.u64("parent_span_id").unwrap_or(0),
            trace_id: event.u64("trace_id").unwrap_or(span_id),
            ts_s: event.f64("ts_s").unwrap_or(0.0),
            duration_s: event.f64("duration_s").unwrap_or(0.0),
        })
    }

    /// Reconstruct a span record from one parsed JSONL log line (as
    /// written by [`crate::JsonlSink`]). Returns `None` for lines that
    /// are not span-end events (no `span_id` field).
    pub fn from_json_value(value: &serde::Value) -> Option<Self> {
        let name = value.get("event")?.as_str()?.to_string();
        let span_id = value.get("span_id")?.as_u64()?;
        Some(Self {
            name,
            span_id,
            parent_id: value
                .get("parent_span_id")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            trace_id: value
                .get("trace_id")
                .and_then(|v| v.as_u64())
                .unwrap_or(span_id),
            ts_s: value.get("ts_s").and_then(|v| v.as_f64()).unwrap_or(0.0),
            duration_s: value
                .get("duration_s")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0),
        })
    }
}

/// Render span records as a Chrome Trace Event Format JSON array
/// (complete `"ph":"X"` events, microsecond timestamps), viewable in
/// `chrome://tracing` or <https://ui.perfetto.dev>. Output is rendered
/// by hand with fixed-precision timestamps so identical inputs produce
/// byte-identical text — the determinism smoke compares these bytes.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"deepcat\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent_span_id\":{}}}}}",
            r.name,
            r.ts_s * 1e6,
            r.duration_s * 1e6,
            r.trace_id,
            r.span_id,
            r.parent_id,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Per-span-name aggregation row of a [`ProfileReport`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ProfileRow {
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Σ duration of those spans (includes child time).
    pub total_s: f64,
    /// Σ (duration − direct children's duration), clamped at 0 per span.
    pub self_s: f64,
}

/// Self-time attribution over a set of span records.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ProfileReport {
    /// Rows sorted by self time (descending), ties by name.
    pub rows: Vec<ProfileRow>,
    /// Σ duration of root spans — the wall time under instrumentation.
    pub total_wall_s: f64,
    /// Σ self time across every row; equals `total_wall_s` when every
    /// span nests cleanly (self times partition their root's duration).
    pub attributed_s: f64,
}

impl ProfileReport {
    /// Fraction of instrumented wall time attributed to named spans,
    /// in percent. 100.0 when there is no wall time at all (frozen
    /// clock) — zero seconds are trivially fully attributed.
    ///
    /// Rounded to 9 decimal places and clamped to `[0, 100]`: self
    /// times that partition their root exactly must report exactly
    /// 100.0, not `99.9999999999999` of float-summation noise.
    pub fn coverage_pct(&self) -> f64 {
        if self.total_wall_s <= 0.0 {
            return 100.0;
        }
        let pct = 100.0 * self.attributed_s / self.total_wall_s;
        ((pct * 1e9).round() / 1e9).clamp(0.0, 100.0)
    }

    /// Render as an aligned text table, largest self time first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>12} {:>7}\n",
            "span", "count", "total_s", "self_s", "self%"
        ));
        let denom = if self.total_wall_s > 0.0 {
            self.total_wall_s
        } else {
            1.0
        };
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12.6} {:>12.6} {:>6.1}%\n",
                r.name,
                r.count,
                r.total_s,
                r.self_s,
                100.0 * r.self_s / denom
            ));
        }
        out.push_str(&format!(
            "wall {:.6}s, attributed {:.6}s ({:.1}%)\n",
            self.total_wall_s,
            self.attributed_s,
            self.coverage_pct()
        ));
        out
    }
}

/// Aggregates [`SpanRecord`]s into a [`ProfileReport`].
#[derive(Debug, Default)]
pub struct Profiler {
    records: Vec<SpanRecord>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, record: SpanRecord) {
        self.records.push(record);
    }

    pub fn add_all(&mut self, records: impl IntoIterator<Item = SpanRecord>) {
        self.records.extend(records);
    }

    /// Number of records accumulated so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Compute the attribution report. Self time of a span is its
    /// duration minus the summed duration of its *direct* children
    /// (clamped at 0 — overlapping guards from out-of-order drops must
    /// not produce negative attribution).
    pub fn report(&self) -> ProfileReport {
        let mut child_time: BTreeMap<u64, f64> = BTreeMap::new();
        for r in &self.records {
            if r.parent_id != 0 {
                *child_time.entry(r.parent_id).or_insert(0.0) += r.duration_s;
            }
        }
        let mut by_name: BTreeMap<&str, ProfileRow> = BTreeMap::new();
        let mut total_wall_s = 0.0;
        let mut attributed_s = 0.0;
        for r in &self.records {
            let self_s =
                (r.duration_s - child_time.get(&r.span_id).copied().unwrap_or(0.0)).max(0.0);
            attributed_s += self_s;
            if r.parent_id == 0 {
                total_wall_s += r.duration_s;
            }
            let row = by_name
                .entry(r.name.as_str())
                .or_insert_with(|| ProfileRow {
                    name: r.name.clone(),
                    count: 0,
                    total_s: 0.0,
                    self_s: 0.0,
                });
            row.count += 1;
            row.total_s += r.duration_s;
            row.self_s += self_s;
        }
        let mut rows: Vec<ProfileRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_s.total_cmp(&a.self_s).then(a.name.cmp(&b.name)));
        ProfileReport {
            rows,
            total_wall_s,
            attributed_s,
        }
    }
}

/// A [`Sink`] that captures span events live and writes a Chrome Trace
/// Event Format file when flushed (and again on drop, so a forgotten
/// flush still produces the file). Non-span events pass through
/// untouched; pair it with other sinks via [`crate::MultiSink`].
pub struct ChromeTraceSink {
    path: PathBuf,
    records: Mutex<Vec<SpanRecord>>,
}

impl ChromeTraceSink {
    pub fn create(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Spans captured so far (clones the buffer — prefer
    /// [`ChromeTraceSink::take_records`]/[`ChromeTraceSink::with_records`]
    /// for large traces).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Move the captured spans out, leaving the buffer empty. Note that
    /// a later [`Sink::flush`] then writes only spans captured after
    /// the take.
    pub fn take_records(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Run `f` over the captured spans in place, without cloning.
    pub fn with_records<R>(&self, f: impl FnOnce(&[SpanRecord]) -> R) -> R {
        f(&self.records.lock())
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        if let Some(record) = SpanRecord::from_event(event) {
            self.records.lock().push(record);
        }
    }

    fn flush(&self) {
        let json = chrome_trace_json(&self.records.lock());
        // Swallow-but-count I/O errors: telemetry must never take down
        // tuning, but a missing trace file must be observable.
        if std::fs::write(&self.path, json.as_bytes()).is_err() {
            crate::counter("telemetry.sink_error").inc();
        }
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, id: u64, parent: u64, trace: u64, ts: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            span_id: id,
            parent_id: parent,
            trace_id: trace,
            ts_s: ts,
            duration_s: dur,
        }
    }

    #[test]
    fn profiler_splits_self_and_child_time() {
        let mut p = Profiler::new();
        p.add(rec("child", 2, 1, 1, 0.1, 0.3));
        p.add(rec("child", 3, 1, 1, 0.5, 0.2));
        p.add(rec("root", 1, 0, 1, 0.0, 1.0));
        let report = p.report();
        assert_eq!(report.total_wall_s, 1.0);
        let root = report.rows.iter().find(|r| r.name == "root").unwrap();
        assert!((root.self_s - 0.5).abs() < 1e-12, "{root:?}");
        let child = report.rows.iter().find(|r| r.name == "child").unwrap();
        assert_eq!(child.count, 2);
        assert!((child.self_s - 0.5).abs() < 1e-12);
        assert!((report.attributed_s - 1.0).abs() < 1e-12);
        assert!((report.coverage_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_self_time_is_clamped() {
        let mut p = Profiler::new();
        // Child reported longer than its parent (drop reordering).
        p.add(rec("child", 2, 1, 1, 0.0, 2.0));
        p.add(rec("parent", 1, 0, 1, 0.0, 1.0));
        let report = p.report();
        let parent = report.rows.iter().find(|r| r.name == "parent").unwrap();
        assert_eq!(parent.self_s, 0.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_and_deterministic() {
        let records = vec![
            rec("root", 1, 0, 1, 0.0, 1.5),
            rec("child", 2, 1, 1, 0.25, 0.5),
        ];
        let a = chrome_trace_json(&records);
        let b = chrome_trace_json(&records);
        assert_eq!(a, b);
        let parsed = serde_json::parse_value(&a).expect("valid JSON");
        let seq = parsed.as_seq().expect("array");
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(seq[1].get("ts").and_then(|v| v.as_f64()), Some(250000.0));
        assert_eq!(
            seq[1]
                .get("args")
                .and_then(|a| a.get("parent_span_id"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn render_puts_hottest_self_time_first() {
        let mut p = Profiler::new();
        p.add(rec("cool", 1, 0, 1, 0.0, 0.1));
        p.add(rec("hot", 2, 0, 2, 0.2, 0.9));
        let report = p.report();
        assert_eq!(report.rows[0].name, "hot");
        let table = report.render();
        let hot_at = table.find("hot").unwrap();
        let cool_at = table.find("cool").unwrap();
        assert!(hot_at < cool_at, "{table}");
    }
}
