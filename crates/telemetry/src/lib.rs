//! End-to-end telemetry for the DeepCAT reproduction: a global metrics
//! registry (counters, gauges, fixed-bucket histograms), span timers for
//! tuning steps, and structured events routed to pluggable sinks.
//!
//! # Design
//!
//! Telemetry is **off by default** and costs one relaxed atomic load per
//! instrumentation point while off — hot paths in the simulator and the
//! replay memories stay unmeasurably close to un-instrumented speed (see
//! `tests/overhead.rs`). Installing a sink turns everything on:
//!
//! ```no_run
//! use std::sync::Arc;
//! let sink = Arc::new(telemetry::JsonlSink::create("run.jsonl").unwrap());
//! telemetry::install(sink);
//! // ... run tuning ...
//! telemetry::shutdown(); // flush + detach
//! ```
//!
//! Instrumented code uses three primitives:
//!
//! * **metrics** — `telemetry::counter("twinq.eval_skipped").inc()`,
//!   `gauge`, `histogram`; aggregated in-process, read via
//!   [`MetricsRegistry::snapshot`];
//! * **events** — `telemetry::event!("twinq.decision", skipped = true)`;
//!   routed to the installed [`Sink`] (JSONL file, console, test buffer);
//! * **spans** — `telemetry::span!("online.step", step = i)`; a guard that
//!   on drop records its duration histogram and emits an event.
//!
//! # Pipelines and sessions
//!
//! [`install`] runs **synchronously**: every event goes straight to the
//! sink under one lock, in emission order — the deterministic mode the
//! byte-identical log comparisons rely on. [`install_sharded`] enables
//! the concurrent pipeline: each emitting thread buffers into its own
//! bounded SPSC shard (never blocking — overflow is *dropped and
//! accounted*, see [`drain`]), and an explicit collector ([`drain`],
//! also run by [`flush`]/[`shutdown`]) moves buffered events into the
//! sink. Wrap per-tenant work in a session scope
//! ([`with_session`]/[`session_scope`]) and every event it emits carries
//! a `session_id` field; [`session_report`] folds the streams into
//! per-session rollups live.
//!
//! Event families and their fields are documented in `README.md`
//! ("Observability") and consumed by `deepcat-tune report`.

mod clock;
pub mod expose;
pub mod health;
mod metrics;
pub mod session;
mod shard;
mod sink;
pub mod sketch;
mod span;
pub mod trace;

pub use clock::{clock_frozen, freeze_clock, now_s, unfreeze_clock, Stopwatch};
pub use expose::{render_prometheus, write_prometheus_snapshot, MetricsServer};
pub use health::{
    active_alerts, alerts_tick, clear_alerts, install_alerts, AlertEngine, AlertRule,
    AlertTransition,
};
pub use metrics::{Buckets, Counter, Gauge, Histogram, HistogramSnapshot};
pub use session::{
    current_session, reset_session_ids, session_scope, with_session, MetricsSnapshot,
    SessionAggregator, SessionCtx, SessionReport, SessionScope, SessionStats,
};
pub use shard::DEFAULT_SHARD_CAPACITY;
pub use sink::{ConsoleSink, Event, FieldValue, JsonlSink, MultiSink, NullSink, Sink, TestSink};
pub use sketch::{ConcurrentSketch, Sketch, SketchSnapshot, DEFAULT_SKETCH_ALPHA};
pub use span::SpanGuard;
pub use trace::{
    chrome_trace_json, ChromeTraceSink, ProfileReport, ProfileRow, Profiler, SpanRecord,
};

use parking_lot::{Mutex, RwLock};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Thread-safe registry of named metrics. Usually accessed through the
/// global instance (via [`counter`], [`gauge`], [`histogram`],
/// [`registry_snapshot`]), but can be instantiated standalone in tests.
///
/// Keyed by `BTreeMap` so every iteration (snapshots, console dumps,
/// JSONL reports) sees metrics in the same sorted order on every run —
/// registry traversal must never be a source of log diffs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    sketches: RwLock<BTreeMap<&'static str, Arc<ConcurrentSketch>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create a histogram; `buckets` applies only on first creation.
    pub fn histogram(&self, name: &'static str, buckets: Buckets) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(buckets))),
        )
    }

    /// Get or create a quantile sketch ([`DEFAULT_SKETCH_ALPHA`] relative
    /// accuracy; the α applies only on first creation).
    pub fn sketch(&self, name: &'static str) -> Arc<ConcurrentSketch> {
        if let Some(s) = self.sketches.read().get(name) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.sketches
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(ConcurrentSketch::new(DEFAULT_SKETCH_ALPHA))),
        )
    }

    /// Serializable snapshot of every metric, sorted by name (the
    /// `BTreeMap` registry iterates in key order already).
    pub fn snapshot(&self) -> RegistrySnapshot {
        // Each map is read under its own statement-scoped guard so no
        // two registry locks are ever held at once.
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            // LOCK-ORDER: `v.snapshot()` is Histogram::snapshot (a name
            // GUARD-EMIT: collision); it never locks the registry or emits.
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect();
        let sketches = self
            .sketches
            .read()
            .iter()
            // GUARD-EMIT: `v.snapshot()` never emits; it locks only its own
            // LOCK-ORDER: stripe mutexes, nested strictly inside this lock.
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            sketches,
        }
    }

    /// Drop every registered metric (used between test runs).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.sketches.write().clear();
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub sketches: Vec<(String, SketchSnapshot)>,
}

impl RegistrySnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    pub fn sketch(&self, name: &str) -> Option<&SketchSnapshot> {
        self.sketches
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Merge another snapshot (same layouts) into this one — counters and
    /// histogram buckets add, gauges take `other`'s value.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort();
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, s) in &other.sketches {
            match self.sketches.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => mine.merge(s),
                None => self.sketches.push((name.clone(), s.clone())),
            }
        }
        self.sketches.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

// ---- global state ----------------------------------------------------

/// Pipeline mode. Off costs one relaxed atomic load per instrumentation
/// point; Sync is the lock-per-event deterministic path; Sharded is the
/// per-thread-buffer concurrent path.
const MODE_OFF: u8 = 0;
const MODE_SYNC: u8 = 1;
const MODE_SHARDED: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);
/// Events accepted by [`emit`] since the last install (dropped-on-
/// overflow events included — they entered the pipeline).
static EVENTS_EMITTED: AtomicU64 = AtomicU64::new(0);

fn global_registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

fn global_sink() -> &'static Mutex<Arc<dyn Sink>> {
    static SINK: OnceLock<Mutex<Arc<dyn Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Arc::new(NullSink)))
}

/// Live per-session rollups, fed by the sync emit path and the sharded
/// collector; read via [`session_report`].
fn live_sessions() -> &'static Mutex<SessionAggregator> {
    static LIVE: OnceLock<Mutex<SessionAggregator>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(SessionAggregator::new()))
}

/// Install a sink and enable telemetry in **synchronous** mode: events
/// reach the sink inline, in emission order, under one global lock. This
/// is the deterministic mode (`--deterministic` logs byte-compare); for
/// concurrent workloads prefer [`install_sharded`].
pub fn install(sink: Arc<dyn Sink>) {
    *global_sink().lock() = sink;
    live_sessions().lock().reset();
    EVENTS_EMITTED.store(0, Ordering::SeqCst);
    MODE.store(MODE_SYNC, Ordering::Release);
}

/// Install a sink and enable telemetry in **sharded** mode: each
/// emitting thread buffers into its own bounded SPSC queue
/// (`shard_capacity` events; [`DEFAULT_SHARD_CAPACITY`] when unsure) and
/// never takes a global lock or blocks — a full shard drops the event
/// and accounts it (`telemetry.dropped` counter + `telemetry.shard_overflow`
/// event at the next drain). Call [`drain`] periodically (or rely on
/// [`flush`]/[`shutdown`]) to move buffered events into the sink.
pub fn install_sharded(sink: Arc<dyn Sink>, shard_capacity: usize) {
    *global_sink().lock() = sink;
    live_sessions().lock().reset();
    EVENTS_EMITTED.store(0, Ordering::SeqCst);
    shard::configure(shard_capacity);
    MODE.store(MODE_SHARDED, Ordering::Release);
}

/// Drain the sharded pipeline into the installed sink (no-op in sync or
/// off mode). Returns the number of buffered events delivered.
pub fn drain() -> u64 {
    if MODE.load(Ordering::Acquire) != MODE_SHARDED {
        return 0;
    }
    let sink = Arc::clone(&*global_sink().lock());
    let mut agg = live_sessions().lock();
    // GUARD-EMIT: emitters never take the aggregator lock (emit() only
    // touches shard buffers), so sink re-entry cannot deadlock here.
    shard::drain_into(&*sink, |e| agg.observe_event(e))
}

/// Record the `telemetry.flush` summary event directly to `sink`
/// (bypassing the pipeline — flushing must work even mid-teardown).
fn record_flush_summary(sink: &dyn Sink) {
    let event = Event::new(
        "telemetry.flush",
        vec![
            (
                "events",
                FieldValue::U64(EVENTS_EMITTED.load(Ordering::SeqCst)),
            ),
            ("dropped", FieldValue::U64(shard::dropped_total())),
            (
                "sink_errors",
                FieldValue::U64(global_registry().counter("telemetry.sink_error").get()),
            ),
            (
                "sessions",
                FieldValue::U64(live_sessions().lock().len() as u64),
            ),
        ],
    );
    sink.record(&event);
}

/// Drain (sharded mode), flush the current sink, restore the
/// [`NullSink`] and disable telemetry. The sink receives a final
/// `telemetry.flush` summary event before flushing.
pub fn shutdown() {
    let was = MODE.swap(MODE_OFF, Ordering::SeqCst);
    let old = std::mem::replace(
        &mut *global_sink().lock(),
        Arc::new(NullSink) as Arc<dyn Sink>,
    );
    if was != MODE_OFF {
        if was == MODE_SHARDED {
            let mut agg = live_sessions().lock();
            // GUARD-EMIT: teardown drain; emitters never take the live
            // aggregator lock, so sink re-entry cannot deadlock on it.
            shard::drain_into(&*old, |e| agg.observe_event(e));
        }
        record_flush_summary(&*old);
    }
    old.flush();
}

/// Drain (sharded mode) and flush the installed sink without detaching
/// it, recording a `telemetry.flush` summary event.
pub fn flush() {
    let mode = MODE.load(Ordering::SeqCst);
    let sink = Arc::clone(&*global_sink().lock());
    if mode == MODE_SHARDED {
        let mut agg = live_sessions().lock();
        // GUARD-EMIT: flush-time drain; emitters never take the live
        // aggregator lock, so sink re-entry cannot deadlock on it.
        shard::drain_into(&*sink, |e| agg.observe_event(e));
    }
    if mode != MODE_OFF {
        record_flush_summary(&*sink);
    }
    sink.flush();
}

/// Whether telemetry is currently enabled. Instrumentation points check
/// this first; while false they cost one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != MODE_OFF
}

/// Live per-session rollups folded from the event stream so far. In
/// sharded mode this drains first, so buffered events are included.
pub fn session_report() -> SessionReport {
    let _ = drain();
    live_sessions().lock().report()
}

/// One coherent observation point: registry snapshot + live session
/// rollups.
pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        registry: registry_snapshot(),
        sessions: session_report(),
    }
}

/// Get or create a named counter (inert-but-valid handle while disabled).
pub fn counter(name: &'static str) -> Arc<Counter> {
    global_registry().counter(name)
}

pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global_registry().gauge(name)
}

pub fn histogram(name: &'static str, buckets: Buckets) -> Arc<Histogram> {
    global_registry().histogram(name, buckets)
}

/// Get or create a named quantile sketch (inert-but-valid handle while
/// disabled).
pub fn sketch(name: &'static str) -> Arc<ConcurrentSketch> {
    global_registry().sketch(name)
}

/// Observe a value into a quantile sketch if telemetry is enabled. The
/// insert touches only this thread's stripe, so the sharded hot path
/// never contends on a shared lock.
#[inline]
pub fn observe_sketch(name: &'static str, v: f64) {
    if enabled() {
        global_registry().sketch(name).insert(v);
    }
}

/// Increment a counter by `n` if telemetry is enabled.
#[inline]
pub fn inc(name: &'static str, n: u64) {
    if enabled() {
        global_registry().counter(name).add(n);
    }
}

/// Set a gauge if telemetry is enabled.
#[inline]
pub fn set_gauge(name: &'static str, v: f64) {
    if enabled() {
        global_registry().gauge(name).set(v);
    }
}

/// Observe a value into a histogram (default unit-interval buckets for
/// values in `[0, 1]`-ish ranges do not fit everything; duration-style
/// metrics should use [`observe_duration`]).
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if enabled() {
        global_registry()
            .histogram(name, Buckets::unit_interval())
            .observe(v);
    }
}

/// Observe a duration in seconds into `<name>.duration_s`.
#[inline]
pub fn observe_duration(name: &'static str, seconds: f64) {
    if enabled() {
        global_registry().histogram_duration(name).observe(seconds);
    }
}

impl MetricsRegistry {
    fn histogram_duration(&self, name: &'static str) -> Arc<Histogram> {
        // One histogram per span family, named `<family>.duration_s`.
        // `&'static str` keys force a small leak per *distinct* family
        // name, created once and cached thereafter.
        if let Some(h) = self
            .histograms
            .read()
            .get(format!("{name}.duration_s").as_str())
        {
            return Arc::clone(h);
        }
        let key: &'static str = Box::leak(format!("{name}.duration_s").into_boxed_str());
        self.histogram(key, Buckets::duration_seconds())
    }
}

/// Snapshot of the global registry.
pub fn registry_snapshot() -> RegistrySnapshot {
    global_registry().snapshot()
}

/// Reset the global registry (tests only — racing with live recording
/// simply drops the races' samples).
pub fn reset_metrics() {
    global_registry().reset();
}

/// Emit a structured event. If a session scope is open on this thread
/// ([`with_session`]/[`session_scope`]) a `session_id` field is attached
/// (unless the caller already set one). Sync mode records to the sink
/// inline; sharded mode buffers on this thread's shard without taking a
/// global lock (see [`install_sharded`]).
#[inline]
pub fn emit(name: &'static str, mut fields: Vec<(&'static str, FieldValue)>) {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == MODE_OFF {
        return;
    }
    if !fields.iter().any(|(k, _)| *k == "session_id") {
        if let Some(id) = session::current_session_id() {
            fields.push(("session_id", FieldValue::U64(id)));
        }
    }
    EVENTS_EMITTED.fetch_add(1, Ordering::Relaxed);
    let event = Event::new(name, fields);
    if mode == MODE_SHARDED {
        shard::push(event);
    } else {
        let sink = Arc::clone(&*global_sink().lock());
        sink.record(&event);
        live_sessions().lock().observe_event(&event);
    }
}

/// Start a span; inert (no clock read) while telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::active(name)
    } else {
        SpanGuard::inert(name)
    }
}

/// Emit an event with `key = value` fields; field expressions are not
/// evaluated while telemetry is disabled.
///
/// ```ignore
/// telemetry::event!("twinq.decision", skipped = true, q_final = q);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($name, vec![$((stringify!($key), $crate::FieldValue::from($val))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x").add(2);
        b.counter("x").add(3);
        b.counter("y").inc();
        a.histogram("h", Buckets::explicit(vec![1.0, 2.0]))
            .observe(0.5);
        b.histogram("h", Buckets::explicit(vec![1.0, 2.0]))
            .observe(1.5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("y"), 1);
        assert_eq!(s.histogram("h").unwrap().count, 2);
    }
}
