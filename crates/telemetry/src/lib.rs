//! End-to-end telemetry for the DeepCAT reproduction: a global metrics
//! registry (counters, gauges, fixed-bucket histograms), span timers for
//! tuning steps, and structured events routed to pluggable sinks.
//!
//! # Design
//!
//! Telemetry is **off by default** and costs one relaxed atomic load per
//! instrumentation point while off — hot paths in the simulator and the
//! replay memories stay unmeasurably close to un-instrumented speed (see
//! `tests/overhead.rs`). Installing a sink turns everything on:
//!
//! ```no_run
//! use std::sync::Arc;
//! let sink = Arc::new(telemetry::JsonlSink::create("run.jsonl").unwrap());
//! telemetry::install(sink);
//! // ... run tuning ...
//! telemetry::shutdown(); // flush + detach
//! ```
//!
//! Instrumented code uses three primitives:
//!
//! * **metrics** — `telemetry::counter("twinq.eval_skipped").inc()`,
//!   `gauge`, `histogram`; aggregated in-process, read via
//!   [`MetricsRegistry::snapshot`];
//! * **events** — `telemetry::event!("twinq.decision", skipped = true)`;
//!   routed to the installed [`Sink`] (JSONL file, console, test buffer);
//! * **spans** — `telemetry::span!("online.step", step = i)`; a guard that
//!   on drop records its duration histogram and emits an event.
//!
//! Event families and their fields are documented in `README.md`
//! ("Observability") and consumed by `deepcat-tune report`.

mod clock;
mod metrics;
mod sink;
mod span;
pub mod trace;

pub use clock::{clock_frozen, freeze_clock, now_s, unfreeze_clock, Stopwatch};
pub use metrics::{Buckets, Counter, Gauge, Histogram, HistogramSnapshot};
pub use sink::{ConsoleSink, Event, FieldValue, JsonlSink, MultiSink, NullSink, Sink, TestSink};
pub use span::SpanGuard;
pub use trace::{
    chrome_trace_json, ChromeTraceSink, ProfileReport, ProfileRow, Profiler, SpanRecord,
};

use parking_lot::{Mutex, RwLock};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Thread-safe registry of named metrics. Usually accessed through the
/// global instance (via [`counter`], [`gauge`], [`histogram`],
/// [`registry_snapshot`]), but can be instantiated standalone in tests.
///
/// Keyed by `BTreeMap` so every iteration (snapshots, console dumps,
/// JSONL reports) sees metrics in the same sorted order on every run —
/// registry traversal must never be a source of log diffs.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create a histogram; `buckets` applies only on first creation.
    pub fn histogram(&self, name: &'static str, buckets: Buckets) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(buckets))),
        )
    }

    /// Serializable snapshot of every metric, sorted by name (the
    /// `BTreeMap` registry iterates in key order already).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// Drop every registered metric (used between test runs).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Merge another snapshot (same layouts) into this one — counters and
    /// histogram buckets add, gauges take `other`'s value.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort();
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

// ---- global state ----------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global_registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

fn global_sink() -> &'static Mutex<Arc<dyn Sink>> {
    static SINK: OnceLock<Mutex<Arc<dyn Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Arc::new(NullSink)))
}

/// Install a sink and enable telemetry (metrics, spans and events).
pub fn install(sink: Arc<dyn Sink>) {
    *global_sink().lock() = sink;
    ENABLED.store(true, Ordering::Release);
}

/// Flush the current sink, restore the [`NullSink`] and disable telemetry.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Release);
    let old = std::mem::replace(
        &mut *global_sink().lock(),
        Arc::new(NullSink) as Arc<dyn Sink>,
    );
    old.flush();
}

/// Flush the installed sink without detaching it.
pub fn flush() {
    global_sink().lock().flush();
}

/// Whether telemetry is currently enabled. Instrumentation points check
/// this first; while false they cost one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Get or create a named counter (inert-but-valid handle while disabled).
pub fn counter(name: &'static str) -> Arc<Counter> {
    global_registry().counter(name)
}

pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global_registry().gauge(name)
}

pub fn histogram(name: &'static str, buckets: Buckets) -> Arc<Histogram> {
    global_registry().histogram(name, buckets)
}

/// Increment a counter by `n` if telemetry is enabled.
#[inline]
pub fn inc(name: &'static str, n: u64) {
    if enabled() {
        global_registry().counter(name).add(n);
    }
}

/// Set a gauge if telemetry is enabled.
#[inline]
pub fn set_gauge(name: &'static str, v: f64) {
    if enabled() {
        global_registry().gauge(name).set(v);
    }
}

/// Observe a value into a histogram (default unit-interval buckets for
/// values in `[0, 1]`-ish ranges do not fit everything; duration-style
/// metrics should use [`observe_duration`]).
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if enabled() {
        global_registry()
            .histogram(name, Buckets::unit_interval())
            .observe(v);
    }
}

/// Observe a duration in seconds into `<name>.duration_s`.
#[inline]
pub fn observe_duration(name: &'static str, seconds: f64) {
    if enabled() {
        global_registry().histogram_duration(name).observe(seconds);
    }
}

impl MetricsRegistry {
    fn histogram_duration(&self, name: &'static str) -> Arc<Histogram> {
        // One histogram per span family, named `<family>.duration_s`.
        // `&'static str` keys force a small leak per *distinct* family
        // name, created once and cached thereafter.
        if let Some(h) = self
            .histograms
            .read()
            .get(format!("{name}.duration_s").as_str())
        {
            return Arc::clone(h);
        }
        let key: &'static str = Box::leak(format!("{name}.duration_s").into_boxed_str());
        self.histogram(key, Buckets::duration_seconds())
    }
}

/// Snapshot of the global registry.
pub fn registry_snapshot() -> RegistrySnapshot {
    global_registry().snapshot()
}

/// Reset the global registry (tests only — racing with live recording
/// simply drops the races' samples).
pub fn reset_metrics() {
    global_registry().reset();
}

/// Emit a structured event to the installed sink.
#[inline]
pub fn emit(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    let sink = Arc::clone(&*global_sink().lock());
    sink.record(&Event::new(name, fields));
}

/// Start a span; inert (no clock read) while telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::active(name)
    } else {
        SpanGuard::inert(name)
    }
}

/// Emit an event with `key = value` fields; field expressions are not
/// evaluated while telemetry is disabled.
///
/// ```ignore
/// telemetry::event!("twinq.decision", skipped = true, q_final = q);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($name, vec![$((stringify!($key), $crate::FieldValue::from($val))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x").add(2);
        b.counter("x").add(3);
        b.counter("y").inc();
        a.histogram("h", Buckets::explicit(vec![1.0, 2.0]))
            .observe(0.5);
        b.histogram("h", Buckets::explicit(vec![1.0, 2.0]))
            .observe(1.5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("y"), 1);
        assert_eq!(s.histogram("h").unwrap().count, 2);
    }
}
