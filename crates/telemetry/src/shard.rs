//! Sharded emit path: per-thread bounded SPSC buffers drained into the
//! installed sink by an explicit collector.
//!
//! In sharded mode ([`crate::install_sharded`]) an emitting thread never
//! takes a process-global lock: it lazily registers a bounded channel
//! (its *shard*) and `try_send`s events into it. A full shard **drops**
//! the event instead of blocking — overflow is counted per shard and
//! surfaced at the next drain as a `telemetry.dropped` counter increment
//! plus a `telemetry.shard_overflow` event, so back-pressure can never
//! stall a tuning step. [`drain_into`] (reached via [`crate::drain`],
//! [`crate::flush`] and [`crate::shutdown`]) moves buffered events into
//! the sink in shard-registration order, FIFO within each shard.
//!
//! Re-installing ([`configure`]) bumps an epoch that invalidates every
//! thread's cached sender, so stale shards from a previous pipeline can
//! never leak events into a new one.

use crate::sink::{Event, FieldValue, Sink};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-shard buffer capacity (events) for
/// [`crate::install_sharded`] callers that don't need tuning.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 14;

/// Collector-side state for one producer thread's buffer.
struct Shard {
    rx: Receiver<Event>,
    /// Producer-side overflow count (monotonic).
    dropped: Arc<AtomicU64>,
    /// Portion of `dropped` already surfaced via `telemetry.shard_overflow`.
    reported: u64,
    /// Registration-order index, for the overflow event's `shard` field.
    index: usize,
}

/// Producer-side cached handle, one per thread (in TLS).
struct LocalShard {
    epoch: u64,
    tx: Sender<Event>,
    dropped: Arc<AtomicU64>,
}

/// Bumped on every [`configure`]; a thread whose cached epoch mismatches
/// re-registers before sending.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_SHARD_CAPACITY);
/// Total drops ever surfaced (reset on [`configure`]); feeds the
/// `telemetry.flush` summary.
static TOTAL_DROPPED: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static Mutex<Vec<Shard>> {
    static SHARDS: OnceLock<Mutex<Vec<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<LocalShard>> = const { RefCell::new(None) };
}

/// Reset the pipeline for a fresh sharded install: set the per-shard
/// capacity, invalidate every thread's cached sender and discard any
/// shards (and buffered events) from the previous install.
pub(crate) fn configure(capacity: usize) {
    // `sync_channel(0)` is a rendezvous channel, which would block.
    CAPACITY.store(capacity.max(1), Ordering::SeqCst);
    TOTAL_DROPPED.store(0, Ordering::SeqCst);
    EPOCH.fetch_add(1, Ordering::SeqCst);
    shards().lock().clear();
}

fn register(epoch: u64) -> LocalShard {
    let (tx, rx) = bounded(CAPACITY.load(Ordering::SeqCst));
    let dropped = Arc::new(AtomicU64::new(0));
    let mut reg = shards().lock();
    let index = reg.len();
    reg.push(Shard {
        rx,
        dropped: Arc::clone(&dropped),
        reported: 0,
        index,
    });
    LocalShard { epoch, tx, dropped }
}

/// Buffer `event` on this thread's shard; never blocks. Overflow (or a
/// torn-down pipeline) increments the shard's drop count instead.
pub(crate) fn push(event: Event) {
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        if local.as_ref().is_none_or(|l| l.epoch != epoch) {
            *local = Some(register(epoch));
        }
        let Some(l) = local.as_ref() else { return };
        if l.tx.try_send(event).is_err() {
            // Full or disconnected: accounted, never blocking.
            l.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Drain every shard into `sink`, FIFO per shard, in registration order.
/// Newly observed overflow is surfaced as a `telemetry.dropped` counter
/// increment and one `telemetry.shard_overflow` event per affected
/// shard; shards whose thread has exited are drained fully, then
/// removed. Each delivered event is also passed to `fold` (the live
/// session aggregator). Returns the number of buffered events delivered.
pub(crate) fn drain_into(sink: &dyn Sink, mut fold: impl FnMut(&Event)) -> u64 {
    let mut reg = shards().lock();
    let mut delivered = 0u64;
    let mut overflow: Vec<(usize, u64)> = Vec::new();
    reg.retain_mut(|shard| {
        let live = loop {
            match shard.rx.try_recv() {
                Ok(ev) => {
                    // GUARD-EMIT: sinks only bump metrics-registry
                    // counters, never the shard registry held here.
                    sink.record(&ev);
                    fold(&ev);
                    delivered += 1;
                }
                Err(TryRecvError::Empty) => break true,
                Err(TryRecvError::Disconnected) => break false,
            }
        };
        let total = shard.dropped.load(Ordering::Relaxed);
        if total > shard.reported {
            // GUARD-EMIT: Vec::push (name-collides with the replay
            // buffers' emitting `push`); a Vec never emits telemetry.
            overflow.push((shard.index, total - shard.reported));
            shard.reported = total;
        }
        live
    });
    drop(reg);
    for (index, dropped) in overflow {
        TOTAL_DROPPED.fetch_add(dropped, Ordering::Relaxed);
        crate::counter("telemetry.dropped").add(dropped);
        let ev = Event::new(
            "telemetry.shard_overflow",
            vec![
                ("shard", FieldValue::U64(index as u64)),
                ("dropped", FieldValue::U64(dropped)),
            ],
        );
        sink.record(&ev);
        fold(&ev);
    }
    delivered
}

/// Drops surfaced so far in this install (monotonic within an install).
pub(crate) fn dropped_total() -> u64 {
    TOTAL_DROPPED.load(Ordering::Relaxed)
}
