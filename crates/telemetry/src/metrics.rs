//! Metric primitives: counters, gauges and fixed-bucket histograms, plus
//! their mergeable point-in-time snapshots.
//!
//! All types are lock-free on the hot path (atomics only); construction
//! and registry lookup take a lock but call sites are expected to be
//! coarse-grained (one evaluation, one tuning step, one training episode).

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket upper bounds for a [`Histogram`]. Always strictly increasing;
/// samples above the last bound land in an implicit overflow bucket.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Buckets {
    pub bounds: Vec<f64>,
}

impl Buckets {
    /// Explicit upper bounds (must be strictly increasing and non-empty).
    pub fn explicit(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Self { bounds }
    }

    /// `count` bounds starting at `start`, each `factor` times the last.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::explicit(bounds)
    }

    /// `count` bounds `start, start+width, ...`.
    pub fn linear(start: f64, width: f64, count: usize) -> Self {
        assert!(width > 0.0 && count > 0);
        Self::explicit((0..count).map(|i| start + width * i as f64).collect())
    }

    /// Default layout for durations in seconds: 1 µs … ~537 s.
    pub fn duration_seconds() -> Self {
        Self::exponential(1e-6, 2.0, 29)
    }

    /// Default layout for unit-interval quantities (rewards, ratios).
    pub fn unit_interval() -> Self {
        Self::linear(0.05, 0.05, 20)
    }
}

/// Fixed-bucket histogram with atomic recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<AtomicU64>,
    /// Samples above the last bound.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    pub fn new(buckets: Buckets) -> Self {
        let n = buckets.bounds.len();
        Self {
            buckets,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        match self.buckets.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.buckets.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    /// Convenience: `quantile(p)` on a fresh snapshot.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.snapshot().quantile(p)
    }
}

fn atomic_f64_add(bits: &AtomicU64, delta: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_min(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]; snapshots with identical bucket
/// layouts can be merged (e.g. across worker threads or runs).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub overflow: u64,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimate the `p`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket containing the target rank. Returns `None` for an
    /// empty histogram; `p <= 0` yields the observed min, `p >= 1` the
    /// observed max, and results are clamped to `[min, max]` so estimates
    /// never leave the observed range.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 1.0 {
            return Some(self.max);
        }
        let target = p * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if next as f64 >= target && c > 0 {
                let lower = if i == 0 {
                    0.0f64.min(self.min)
                } else {
                    self.bounds[i - 1]
                };
                let upper = self.bounds[i];
                let frac = (target - cum as f64) / c as f64;
                let est = lower + frac * (upper - lower);
                return Some(est.clamp(self.min, self.max));
            }
            cum = next;
        }
        // Target rank lies in the overflow bucket: all we know is that the
        // sample exceeded the last bound, so report the observed max.
        Some(self.max)
    }

    /// Merge `other` into `self`. Panics if bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let h = Histogram::new(Buckets::explicit(vec![1.0, 2.0, 4.0]));
        // A sample exactly on a bound lands in that bucket (<= semantics).
        h.observe(1.0);
        h.observe(1.5);
        h.observe(4.0);
        h.observe(9.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn merge_accumulates() {
        let h1 = Histogram::new(Buckets::explicit(vec![1.0, 2.0]));
        let h2 = Histogram::new(Buckets::explicit(vec![1.0, 2.0]));
        h1.observe(0.5);
        h2.observe(1.5);
        h2.observe(5.0);
        let mut s = h1.snapshot();
        s.merge(&h2.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.counts, vec![1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 5.0);
    }
}
