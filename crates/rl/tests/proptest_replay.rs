//! Property-based tests of the replay memories — the data structures the
//! paper's RDPER contribution modifies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{RdPer, ReplayMemory, SumTree, Transition, UniformReplay};

fn t(r: f64) -> Transition {
    Transition::new(vec![r], vec![r], r, vec![r], false)
}

proptest! {
    #[test]
    fn sum_tree_total_equals_leaf_sum(
        updates in proptest::collection::vec((0usize..32, 0.0f64..100.0), 1..64)
    ) {
        let mut tree = SumTree::new(32);
        let mut leaves = vec![0.0; 32];
        for (i, p) in updates {
            tree.set(i, p);
            leaves[i] = p;
        }
        let sum: f64 = leaves.iter().sum();
        prop_assert!((tree.total() - sum).abs() < 1e-9 * (1.0 + sum));
    }

    #[test]
    fn sum_tree_find_returns_positive_leaf(
        updates in proptest::collection::vec((0usize..16, 0.01f64..10.0), 1..32),
        frac in 0.0f64..0.999,
    ) {
        let mut tree = SumTree::new(16);
        for (i, p) in updates {
            tree.set(i, p);
        }
        let leaf = tree.find(frac * tree.total());
        prop_assert!(tree.get(leaf) > 0.0, "sampled a zero-priority leaf");
    }

    #[test]
    fn uniform_replay_never_exceeds_capacity(
        rewards in proptest::collection::vec(-1.0f64..1.0, 1..200),
        cap in 1usize..64,
    ) {
        let mut buf = UniformReplay::new(cap);
        for &r in &rewards {
            buf.push(t(r));
        }
        prop_assert_eq!(buf.len(), rewards.len().min(cap));
    }

    #[test]
    fn uniform_replay_keeps_newest(
        rewards in proptest::collection::vec(0.0f64..1.0, 10..100),
    ) {
        let cap = 8;
        let mut buf = UniformReplay::new(cap);
        for (i, &r) in rewards.iter().enumerate() {
            buf.push(t(r + i as f64 * 10.0)); // make rewards unique per index
        }
        // The last push must still be present.
        let last = rewards.len() - 1;
        let expect = rewards[last] + last as f64 * 10.0;
        prop_assert!(buf.iter().any(|x| x.reward == expect));
    }

    #[test]
    fn rdper_pools_partition_all_transitions(
        rewards in proptest::collection::vec(-2.0f64..2.0, 1..128),
        threshold in -1.0f64..1.0,
    ) {
        let mut buf = RdPer::new(1024, threshold, 0.6);
        for &r in &rewards {
            buf.push(t(r));
        }
        prop_assert_eq!(buf.len(), rewards.len());
        let high_expected = rewards.iter().filter(|&&r| r >= threshold).count();
        prop_assert_eq!(buf.high_len(), high_expected);
        prop_assert_eq!(buf.low_len(), rewards.len() - high_expected);
    }

    #[test]
    fn rdper_batches_respect_beta_when_both_pools_filled(
        beta in 0.0f64..1.0,
        batch in 4usize..64,
    ) {
        let mut buf = RdPer::new(4096, 0.0, beta);
        for i in 0..200 {
            buf.push(t(if i % 2 == 0 { 0.5 } else { -0.5 }));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let b = buf.sample(batch, &mut rng).unwrap();
        prop_assert_eq!(b.len(), batch);
        let high = b.transitions.iter().filter(|x| x.reward > 0.0).count();
        let want = ((beta * batch as f64).round() as usize).min(batch);
        prop_assert_eq!(high, want);
    }
}
