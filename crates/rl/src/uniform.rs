//! The conventional experience replay: a fixed-capacity ring buffer with
//! uniformly random sampling (what DDPG/TD3 use out of the box).

use crate::transition::{Batch, ReplayMemory, Transition};
use rand::Rng;

/// Uniform ring-buffer replay memory.
#[derive(Clone, Debug)]
pub struct UniformReplay {
    capacity: usize,
    data: Vec<Transition>,
    /// Next write position once the buffer is full.
    head: usize,
}

impl UniformReplay {
    /// Create a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            data: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over the stored transitions (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.data.iter()
    }

    /// Random access to the `i`-th stored transition (storage order).
    pub fn get(&self, i: usize) -> &Transition {
        &self.data[i]
    }
}

impl ReplayMemory for UniformReplay {
    fn push(&mut self, t: Transition) {
        if !t.is_finite() {
            telemetry::inc("replay.nonfinite_dropped", 1);
            return;
        }
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn sample(&mut self, batch: usize, rng: &mut dyn rand::RngCore) -> Option<Batch> {
        let _span = telemetry::span!("replay.sample");
        if self.data.len() < batch {
            return None;
        }
        let mut transitions = Vec::with_capacity(batch);
        let mut indices = Vec::with_capacity(batch);
        for _ in 0..batch {
            let i = rng.gen_range(0..self.data.len());
            transitions.push(self.data[i].clone());
            indices.push(i as u64);
        }
        // The len gauge lives here rather than in `push` so RDPER's internal
        // pools (which sample via `get`, not `sample`) never touch it.
        telemetry::inc("replay.uniform.sampled", batch as u64);
        telemetry::set_gauge("replay.uniform.len", self.data.len() as f64);
        Some(Batch {
            transitions,
            weights: vec![1.0; batch],
            indices,
        })
    }

    fn update_priorities(&mut self, _indices: &[u64], _td_errors: &[f64]) {}

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition::new(vec![0.0], vec![0.0], r, vec![0.0], false)
    }

    #[test]
    fn sample_requires_enough_data() {
        let mut buf = UniformReplay::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        buf.push(t(1.0));
        assert!(buf.sample(2, &mut rng).is_none());
        buf.push(t(2.0));
        assert_eq!(buf.sample(2, &mut rng).unwrap().len(), 2);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = UniformReplay::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f64> = buf.iter().map(|x| x.reward).collect();
        // Oldest (0 and 1) evicted.
        assert!(!rewards.contains(&0.0));
        assert!(!rewards.contains(&1.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut buf = UniformReplay::new(100);
        for i in 0..100 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..200 {
            let b = buf.sample(50, &mut rng).unwrap();
            for tr in &b.transitions {
                counts[tr.reward as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let mean = total as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.5 && (c as f64) < mean * 1.5,
                "index {i} sampled {c} times (mean {mean})"
            );
        }
    }

    #[test]
    fn nonfinite_transitions_are_rejected_at_the_boundary() {
        let mut buf = UniformReplay::new(10);
        buf.push(t(f64::NAN));
        buf.push(t(f64::INFINITY));
        buf.push(Transition::new(
            vec![f64::NAN],
            vec![0.0],
            0.5,
            vec![0.0],
            false,
        ));
        assert!(buf.is_empty(), "poisoned transitions must not be stored");
        buf.push(t(1.0));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn weights_are_unit() {
        let mut buf = UniformReplay::new(10);
        for i in 0..10 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let b = buf.sample(4, &mut rng).unwrap();
        assert!(b.weights.iter().all(|&w| w == 1.0));
    }
}
