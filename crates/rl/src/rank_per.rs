//! Rank-based prioritized experience replay — the second variant from
//! Schaul et al. (2015): `P(i) ∝ (1/rank(i))^α` where transitions are
//! ranked by |TD error|. More robust to outlier TD errors than the
//! proportional variant (an OOM-penalty transition cannot monopolize the
//! sampling distribution), at the cost of periodic re-sorting.

use crate::transition::{Batch, ReplayMemory, Transition};
use rand::Rng;

/// Rank-based PER with lazy re-ranking.
#[derive(Clone, Debug)]
pub struct RankBasedReplay {
    capacity: usize,
    data: Vec<Transition>,
    /// |TD error| per stored transition (same indexing as `data`).
    priorities: Vec<f64>,
    head: usize,
    /// Indices sorted by descending priority; refreshed lazily.
    ranking: Vec<usize>,
    dirty: bool,
    /// Rank exponent α.
    pub alpha: f64,
    /// Importance-sampling exponent β.
    pub beta: f64,
    max_priority: f64,
}

impl RankBasedReplay {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            data: Vec::new(),
            priorities: Vec::new(),
            head: 0,
            ranking: Vec::new(),
            dirty: true,
            alpha: 0.7,
            beta: 0.5,
            max_priority: 1.0,
        }
    }

    fn refresh_ranking(&mut self) {
        if !self.dirty && self.ranking.len() == self.data.len() {
            return;
        }
        self.ranking = (0..self.data.len()).collect();
        // total_cmp keeps the re-rank total even if a NaN TD error ever
        // reaches `update_priorities` — NaNs sort last instead of panicking.
        self.ranking
            .sort_by(|&a, &b| self.priorities[b].total_cmp(&self.priorities[a]));
        self.dirty = false;
    }

    /// P(rank) ∝ (1/rank)^α over ranks 1..=n (unnormalized weight).
    fn rank_weight(&self, rank0: usize) -> f64 {
        (1.0 / (rank0 + 1) as f64).powf(self.alpha)
    }
}

impl ReplayMemory for RankBasedReplay {
    fn push(&mut self, t: Transition) {
        if !t.is_finite() {
            telemetry::inc("replay.nonfinite_dropped", 1);
            return;
        }
        if self.data.len() < self.capacity {
            self.data.push(t);
            self.priorities.push(self.max_priority);
        } else {
            self.data[self.head] = t;
            self.priorities[self.head] = self.max_priority;
            self.head = (self.head + 1) % self.capacity;
        }
        self.dirty = true;
    }

    fn sample(&mut self, batch: usize, rng: &mut dyn rand::RngCore) -> Option<Batch> {
        let _span = telemetry::span!("replay.sample");
        if self.data.len() < batch {
            return None;
        }
        self.refresh_ranking();
        let n = self.data.len();
        // Total mass of the power-law over ranks.
        let total: f64 = (0..n).map(|r| self.rank_weight(r)).sum();
        let mut transitions = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        let mut indices = Vec::with_capacity(batch);
        for _ in 0..batch {
            // Inverse-CDF by linear scan (n is bounded by the capacity;
            // amortized cost is fine for the batch sizes RL uses).
            let mut u = rng.gen::<f64>() * total;
            let mut rank = 0;
            while rank + 1 < n {
                let w = self.rank_weight(rank);
                if u < w {
                    break;
                }
                u -= w;
                rank += 1;
            }
            let idx = self.ranking[rank];
            let p = self.rank_weight(rank) / total;
            transitions.push(self.data[idx].clone());
            weights.push((n as f64 * p).powf(-self.beta));
            indices.push(idx as u64);
        }
        let wmax = weights.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        for w in &mut weights {
            *w /= wmax;
        }
        Some(Batch {
            transitions,
            weights,
            indices,
        })
    }

    fn update_priorities(&mut self, indices: &[u64], td_errors: &[f64]) {
        assert_eq!(indices.len(), td_errors.len());
        for (&i, &td) in indices.iter().zip(td_errors) {
            let raw = td.abs() + 1e-6;
            // Non-finite TD errors get the running max priority: ranked
            // first (replayed promptly) without contaminating rank math.
            let p = if raw.is_finite() {
                raw
            } else {
                self.max_priority
            };
            self.max_priority = self.max_priority.max(p);
            if let Some(slot) = self.priorities.get_mut(i as usize) {
                *slot = p;
            }
        }
        self.dirty = true;
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition::new(vec![r], vec![0.0], r, vec![0.0], false)
    }

    #[test]
    fn top_ranked_transition_is_sampled_most() {
        let mut buf = RankBasedReplay::new(64);
        for i in 0..64 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..64).collect();
        let mut tds = vec![0.1; 64];
        tds[20] = 100.0; // outlier TD error → rank 1
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = vec![0usize; 64];
        for _ in 0..300 {
            let b = buf.sample(16, &mut rng).unwrap();
            for &i in &b.indices {
                hits[i as usize] += 1;
            }
        }
        let max_other = hits
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 20)
            .map(|(_, &h)| h)
            .max()
            .unwrap();
        assert!(
            hits[20] > max_other,
            "rank-1 sampled {} vs max other {}",
            hits[20],
            max_other
        );
    }

    #[test]
    fn outlier_cannot_monopolize_like_proportional_would() {
        // With an extreme TD error, proportional PER gives the outlier
        // ~99% of the mass; rank-based caps it at P(rank 1).
        let mut buf = RankBasedReplay::new(32);
        for i in 0..32 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..32).collect();
        let mut tds = vec![1.0; 32];
        tds[5] = 1e9;
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits5 = 0;
        let mut total = 0;
        for _ in 0..200 {
            let b = buf.sample(8, &mut rng).unwrap();
            hits5 += b.indices.iter().filter(|&&i| i == 5).count();
            total += b.len();
        }
        let frac = hits5 as f64 / total as f64;
        assert!(frac < 0.5, "outlier fraction {frac} must stay bounded");
        assert!(frac > 0.05, "but it must still be preferred");
    }

    #[test]
    fn is_weights_penalize_high_rank() {
        let mut buf = RankBasedReplay::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..16).collect();
        let mut tds: Vec<f64> = (0..16).map(|i| (i + 1) as f64).collect();
        tds.reverse();
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(3);
        let b = buf.sample(16, &mut rng).unwrap();
        // The most-sampled (lowest index in priority order) gets the lowest
        // weight; all weights normalized to ≤ 1.
        assert!(b.weights.iter().all(|&w| w <= 1.0 + 1e-12 && w > 0.0));
    }

    #[test]
    fn wraps_at_capacity() {
        let mut buf = RankBasedReplay::new(8);
        for i in 0..20 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 8);
        let mut rng = StdRng::seed_from_u64(4);
        let b = buf.sample(8, &mut rng).unwrap();
        assert!(b.transitions.iter().all(|x| x.reward >= 12.0));
    }

    #[test]
    fn non_finite_td_errors_do_not_break_ranking() {
        let mut buf = RankBasedReplay::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..16).collect();
        let mut tds = vec![1.0; 16];
        tds[3] = f64::NAN;
        tds[7] = f64::INFINITY;
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(6);
        // Pre-total_cmp this re-rank panicked on the NaN priority.
        let b = buf.sample(8, &mut rng).expect("sampling must survive");
        assert_eq!(b.len(), 8);
        assert!(
            b.weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "{:?}",
            b.weights
        );
    }

    #[test]
    fn needs_enough_data() {
        let mut buf = RankBasedReplay::new(8);
        buf.push(t(0.0));
        let mut rng = StdRng::seed_from_u64(5);
        assert!(buf.sample(2, &mut rng).is_none());
    }
}
