//! RDPER — the paper's reward-driven prioritized experience replay
//! (Section 3.3).
//!
//! Transitions are split by immediate reward against a threshold `R_th`
//! into a high-reward pool `P_high` and a low-reward pool `P_low`. Each
//! sampled batch of size `m` draws `⌈β·m⌉` transitions from `P_high` and
//! the rest from `P_low`, guaranteeing the proportion of the rare but
//! valuable high-reward experiences regardless of how scarce they are in
//! the stream. The paper settles on `β = 0.6` (Fig. 11).

use crate::transition::{Batch, ReplayMemory, Transition};
use crate::uniform::UniformReplay;
use rand::Rng;

/// Reward-driven dual-pool replay memory.
///
/// ```
/// use rl::{RdPer, ReplayMemory, Transition};
/// use rand::SeedableRng;
///
/// let mut buf = RdPer::new(1024, 0.3, 0.6); // R_th = 0.3, β = 0.6
/// for i in 0..100 {
///     let r = if i % 10 == 0 { 0.8 } else { -0.2 }; // sparse high rewards
///     buf.push(Transition::new(vec![0.0], vec![0.5], r, vec![0.0], false));
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let batch = buf.sample(20, &mut rng).unwrap();
/// // β·m = 12 of the 20 samples are guaranteed high-reward:
/// assert_eq!(batch.transitions.iter().filter(|t| t.reward >= 0.3).count(), 12);
/// ```
#[derive(Clone, Debug)]
pub struct RdPer {
    high: UniformReplay,
    low: UniformReplay,
    /// Reward threshold `R_th` splitting the pools.
    pub reward_threshold: f64,
    /// High-reward batch fraction `β`.
    pub beta: f64,
}

impl RdPer {
    /// Buffer with `capacity` transitions per pool, threshold `R_th` and
    /// high-reward ratio `β ∈ [0, 1]`.
    pub fn new(capacity: usize, reward_threshold: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "β must be in [0,1]");
        Self {
            high: UniformReplay::new(capacity),
            low: UniformReplay::new(capacity),
            reward_threshold,
            beta,
        }
    }

    /// The paper's defaults: `β = 0.6`, with `R_th = 0.3` on this
    /// reproduction's reward scale (rewards ≥ 0.3 correspond to
    /// configurations clearly faster than the expected performance).
    pub fn with_paper_defaults(capacity: usize) -> Self {
        Self::new(capacity, 0.3, 0.6)
    }

    /// Transitions currently in the high-reward pool.
    pub fn high_len(&self) -> usize {
        self.high.len()
    }

    /// Transitions currently in the low-reward pool.
    pub fn low_len(&self) -> usize {
        self.low.len()
    }

    fn sample_pool(
        pool: &mut UniformReplay,
        n: usize,
        rng: &mut dyn rand::RngCore,
        out: &mut Vec<Transition>,
    ) -> usize {
        if n == 0 || pool.is_empty() {
            return 0;
        }
        // Sample with replacement (the pools can be smaller than the quota
        // early in training — the guarantee is about the *ratio*).
        let len = pool.len();
        for _ in 0..n {
            let i = rng.gen_range(0..len);
            out.push(pool.get(i).clone());
        }
        n
    }
}

impl ReplayMemory for RdPer {
    fn push(&mut self, t: Transition) {
        if t.reward >= self.reward_threshold {
            self.high.push(t);
        } else {
            self.low.push(t);
        }
        telemetry::set_gauge("rdper.high_len", self.high.len() as f64);
        telemetry::set_gauge("rdper.low_len", self.low.len() as f64);
    }

    fn sample(&mut self, batch: usize, rng: &mut dyn rand::RngCore) -> Option<Batch> {
        let _span = telemetry::span!("replay.sample");
        if self.len() < batch {
            return None;
        }
        let want_high = ((self.beta * batch as f64).round() as usize).min(batch);
        let mut transitions = Vec::with_capacity(batch);
        // Draw the guaranteed share from each pool; if one pool is still
        // empty, the other covers its quota so the batch is always full.
        let quota_high = if self.high.is_empty() { 0 } else { want_high };
        let quota_low = if self.low.is_empty() {
            0
        } else {
            batch - quota_high
        };
        let mut high_n = Self::sample_pool(&mut self.high, quota_high, rng, &mut transitions);
        Self::sample_pool(&mut self.low, quota_low, rng, &mut transitions);
        let missing = batch - transitions.len();
        if missing > 0 {
            let from_high = !self.high.is_empty();
            let pool = if from_high {
                &mut self.high
            } else {
                &mut self.low
            };
            Self::sample_pool(pool, missing, rng, &mut transitions);
            if from_high {
                high_n += missing;
            }
        }
        let n = transitions.len();
        telemetry::inc("rdper.sampled_high", high_n as u64);
        telemetry::inc("rdper.sampled_low", (n - high_n) as u64);
        telemetry::observe("rdper.actual_beta", high_n as f64 / n.max(1) as f64);
        Some(Batch {
            transitions,
            weights: vec![1.0; n],
            indices: vec![u64::MAX; n],
        })
    }

    fn update_priorities(&mut self, _indices: &[u64], _td_errors: &[f64]) {}

    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition::new(vec![0.0], vec![0.0], r, vec![0.0], false)
    }

    #[test]
    fn transitions_route_to_the_right_pool() {
        let mut buf = RdPer::new(16, 0.2, 0.6);
        buf.push(t(0.5)); // high
        buf.push(t(0.2)); // boundary → high (≥)
        buf.push(t(0.1)); // low
        buf.push(t(-0.4)); // low
        assert_eq!(buf.high_len(), 2);
        assert_eq!(buf.low_len(), 2);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn batch_guarantees_high_reward_ratio() {
        let mut buf = RdPer::new(4096, 0.0, 0.6);
        // 1% high-reward transitions — the paper's sparse regime.
        for i in 0..1000 {
            buf.push(t(if i % 100 == 0 { 0.8 } else { -0.3 }));
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let b = buf.sample(40, &mut rng).unwrap();
            let high = b.transitions.iter().filter(|x| x.reward >= 0.0).count();
            assert_eq!(high, 24, "β·m = 0.6·40 = 24 high samples guaranteed");
        }
    }

    #[test]
    fn all_low_rewards_still_fill_batches() {
        let mut buf = RdPer::new(64, 0.0, 0.6);
        for _ in 0..32 {
            buf.push(t(-1.0));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let b = buf.sample(16, &mut rng).unwrap();
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn all_high_rewards_still_fill_batches() {
        let mut buf = RdPer::new(64, 0.0, 0.6);
        for _ in 0..32 {
            buf.push(t(0.9));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let b = buf.sample(16, &mut rng).unwrap();
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn beta_zero_and_one_are_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        for (beta, expect_high) in [(0.0, 0usize), (1.0, 20usize)] {
            let mut buf = RdPer::new(256, 0.0, beta);
            for i in 0..100 {
                buf.push(t(if i % 2 == 0 { 0.5 } else { -0.5 }));
            }
            let b = buf.sample(20, &mut rng).unwrap();
            let high = b.transitions.iter().filter(|x| x.reward > 0.0).count();
            assert_eq!(high, expect_high, "β = {beta}");
        }
    }

    #[test]
    fn paper_defaults() {
        let buf = RdPer::with_paper_defaults(128);
        assert_eq!(buf.beta, 0.6);
        assert_eq!(buf.reward_threshold, 0.3);
    }

    #[test]
    fn sample_returns_none_until_enough() {
        let mut buf = RdPer::new(8, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        buf.push(t(1.0));
        assert!(buf.sample(4, &mut rng).is_none());
    }
}
