//! # rl
//!
//! Reinforcement-learning building blocks for the DeepCAT reproduction:
//! transitions and the replay-memory trait, three replay implementations —
//! the conventional uniform ring buffer, TD-error prioritized replay
//! (Schaul et al. 2015, used by the CDBTune baseline), and the paper's
//! reward-driven dual-pool RDPER — plus Gaussian and Ornstein–Uhlenbeck
//! exploration noise.

pub mod noise;
pub mod normalizer;
pub mod per;
pub mod rank_per;
pub mod rdper;
pub mod sum_tree;
pub mod transition;
pub mod uniform;

pub use noise::{GaussianNoise, OrnsteinUhlenbeck};
pub use normalizer::RunningNorm;
pub use per::PrioritizedReplay;
pub use rank_per::RankBasedReplay;
pub use rdper::RdPer;
pub use sum_tree::SumTree;
pub use transition::{Batch, ReplayMemory, Transition};
pub use uniform::UniformReplay;
