//! TD-error prioritized experience replay (Schaul et al., 2015) — the
//! replay mechanism CDBTune-style DDPG tuners use, and the mechanism the
//! paper's RDPER argues against for online configuration tuning.

use crate::sum_tree::SumTree;
use crate::transition::{Batch, ReplayMemory, Transition};
use rand::Rng;

/// Proportional-variant PER: `P(i) ∝ (|δ_i| + ε)^α` with importance
/// sampling weights `w_i = (N · P(i))^{-β}` normalized by the batch max.
#[derive(Clone, Debug)]
pub struct PrioritizedReplay {
    capacity: usize,
    data: Vec<Option<Transition>>,
    tree: SumTree,
    head: usize,
    len: usize,
    /// Priority exponent α.
    pub alpha: f64,
    /// Importance-sampling exponent β (annealed toward 1 by the caller if
    /// desired; kept fixed by default).
    pub beta: f64,
    /// Small constant keeping every priority positive.
    pub eps: f64,
    max_priority: f64,
}

impl PrioritizedReplay {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            data: vec![None; capacity],
            tree: SumTree::new(capacity),
            head: 0,
            len: 0,
            alpha: 0.6,
            beta: 0.4,
            eps: 1e-3,
            max_priority: 1.0,
        }
    }

    fn priority_of(&self, td_error: f64) -> f64 {
        (td_error.abs() + self.eps).powf(self.alpha)
    }
}

impl ReplayMemory for PrioritizedReplay {
    fn push(&mut self, t: Transition) {
        if !t.is_finite() {
            telemetry::inc("replay.nonfinite_dropped", 1);
            return;
        }
        let slot = self.head;
        self.data[slot] = Some(t);
        // New transitions get the running max priority so each is replayed
        // at least once with high probability.
        self.tree.set(slot, self.max_priority);
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    fn sample(&mut self, batch: usize, rng: &mut dyn rand::RngCore) -> Option<Batch> {
        let _span = telemetry::span!("replay.sample");
        if self.len < batch || self.tree.total() <= 0.0 {
            return None;
        }
        let total = self.tree.total();
        let seg = total / batch as f64;
        let mut transitions = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        let mut indices = Vec::with_capacity(batch);
        let n = self.len as f64;
        for k in 0..batch {
            // Stratified sampling: one draw per segment.
            let lo = seg * k as f64;
            let mass = lo + rng.gen::<f64>() * seg;
            let mut idx = self.tree.find(mass.min(total * (1.0 - 1e-12)));
            // Skip empty slots (can only happen before the buffer wraps).
            if self.data[idx].is_none() {
                idx = (0..self.capacity)
                    .find(|&i| self.data[i].is_some())
                    // PANIC-SAFETY: len >= batch >= 1, so at least one
                    // slot holds a transition.
                    .expect("buffer has data");
            }
            let p = self.tree.get(idx) / total;
            let w = (n * p).powf(-self.beta);
            // PANIC-SAFETY: idx was redirected to an occupied slot above.
            transitions.push(self.data[idx].clone().expect("occupied slot"));
            weights.push(w);
            indices.push(idx as u64);
        }
        // Normalize weights by the max for stability.
        let wmax = weights.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        for w in &mut weights {
            *w /= wmax;
        }
        telemetry::inc("replay.per.sampled", batch as u64);
        telemetry::set_gauge("replay.per.len", self.len as f64);
        telemetry::set_gauge("replay.per.max_priority", self.max_priority);
        Some(Batch {
            transitions,
            weights,
            indices,
        })
    }

    fn update_priorities(&mut self, indices: &[u64], td_errors: &[f64]) {
        assert_eq!(indices.len(), td_errors.len());
        for (&i, &td) in indices.iter().zip(td_errors) {
            let raw = self.priority_of(td);
            // A non-finite TD error (diverged critic, inf OOM penalty)
            // would poison the sum-tree total and break stratified
            // sampling; fall back to the running max so the transition is
            // still replayed promptly.
            let p = if raw.is_finite() {
                raw
            } else {
                self.max_priority
            };
            self.max_priority = self.max_priority.max(p);
            self.tree.set(i as usize, p);
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition::new(vec![r], vec![0.0], r, vec![0.0], false)
    }

    #[test]
    fn new_transitions_get_max_priority() {
        let mut buf = PrioritizedReplay::new(8);
        buf.push(t(0.0));
        buf.update_priorities(&[0], &[10.0]); // big TD error → max_priority grows
        buf.push(t(1.0));
        assert!((buf.tree.get(1) - buf.tree.get(0)).abs() < 1e-9);
    }

    #[test]
    fn high_td_error_is_sampled_more() {
        let mut buf = PrioritizedReplay::new(64);
        for i in 0..64 {
            buf.push(t(i as f64));
        }
        // Give transition 7 a huge TD error, everyone else tiny.
        let idx: Vec<u64> = (0..64).collect();
        let mut tds = vec![0.01; 64];
        tds[7] = 5.0;
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits7 = 0;
        let mut total = 0;
        for _ in 0..200 {
            let b = buf.sample(16, &mut rng).unwrap();
            hits7 += b.transitions.iter().filter(|x| x.reward == 7.0).count();
            total += b.len();
        }
        let frac = hits7 as f64 / total as f64;
        assert!(
            frac > 0.3,
            "transition with dominant priority sampled {frac}"
        );
    }

    #[test]
    fn weights_penalize_over_sampled() {
        let mut buf = PrioritizedReplay::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..16).collect();
        let mut tds = vec![0.01; 16];
        tds[3] = 8.0;
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(6);
        let b = buf.sample(16, &mut rng).unwrap();
        // Find a sample of index 3 and one of another index.
        let w3 = b
            .indices
            .iter()
            .zip(&b.weights)
            .find(|(&i, _)| i == 3)
            .map(|(_, &w)| w);
        let wother = b
            .indices
            .iter()
            .zip(&b.weights)
            .find(|(&i, _)| i != 3)
            .map(|(_, &w)| w);
        if let (Some(w3), Some(wo)) = (w3, wother) {
            assert!(
                w3 < wo,
                "high-priority sample must get lower IS weight: {w3} vs {wo}"
            );
        }
    }

    #[test]
    fn sample_needs_enough_transitions() {
        let mut buf = PrioritizedReplay::new(8);
        let mut rng = StdRng::seed_from_u64(7);
        buf.push(t(0.0));
        assert!(buf.sample(2, &mut rng).is_none());
    }

    #[test]
    fn non_finite_td_errors_do_not_poison_sampling() {
        let mut buf = PrioritizedReplay::new(16);
        for i in 0..16 {
            buf.push(t(i as f64));
        }
        let idx: Vec<u64> = (0..16).collect();
        let mut tds = vec![1.0; 16];
        tds[3] = f64::NAN;
        tds[7] = f64::INFINITY;
        tds[11] = f64::NEG_INFINITY;
        buf.update_priorities(&idx, &tds);
        let mut rng = StdRng::seed_from_u64(9);
        let b = buf.sample(8, &mut rng).expect("sampling must survive");
        assert_eq!(b.len(), 8);
        assert!(
            b.weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "{:?}",
            b.weights
        );
        assert!(buf.tree.total().is_finite());
    }

    #[test]
    fn wrap_around_eviction() {
        let mut buf = PrioritizedReplay::new(4);
        for i in 0..10 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 4);
        let mut rng = StdRng::seed_from_u64(8);
        let b = buf.sample(4, &mut rng).unwrap();
        assert!(b.transitions.iter().all(|x| x.reward >= 6.0));
    }
}
