//! Core reinforcement-learning data types.

use serde::{Deserialize, Serialize};

/// One environment interaction `(s, a, r, s', done)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    pub state: Vec<f64>,
    pub action: Vec<f64>,
    pub reward: f64,
    pub next_state: Vec<f64>,
    pub done: bool,
}

impl Transition {
    pub fn new(
        state: Vec<f64>,
        action: Vec<f64>,
        reward: f64,
        next_state: Vec<f64>,
        done: bool,
    ) -> Self {
        Self {
            state,
            action,
            reward,
            next_state,
            done,
        }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.state.len()
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action.len()
    }

    /// True when every stored number is finite — the invariant the replay
    /// buffers enforce at their insertion boundary (one NaN reward would
    /// silently poison every later gradient step).
    pub fn is_finite(&self) -> bool {
        self.reward.is_finite()
            && self.state.iter().all(|v| v.is_finite())
            && self.action.iter().all(|v| v.is_finite())
            && self.next_state.iter().all(|v| v.is_finite())
    }
}

/// A batch sampled from a replay buffer: transitions plus the importance
/// weights and buffer indices needed by prioritized replay variants.
#[derive(Clone, Debug)]
pub struct Batch {
    pub transitions: Vec<Transition>,
    /// Importance-sampling weight per transition (all 1.0 for uniform and
    /// RDPER sampling).
    pub weights: Vec<f64>,
    /// Opaque per-transition handles for [`ReplayMemory::update_priorities`].
    pub indices: Vec<u64>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

/// Common interface over the replay-buffer variants (uniform, TD-error PER,
/// reward-driven RDPER).
pub trait ReplayMemory {
    /// Store a transition (evicting the oldest when full).
    fn push(&mut self, t: Transition);

    /// Sample a training batch. Returns `None` until the buffer holds at
    /// least `batch` transitions.
    fn sample(&mut self, batch: usize, rng: &mut dyn rand::RngCore) -> Option<Batch>;

    /// Feed back TD errors for the sampled indices (no-op for buffers that
    /// do not track priorities).
    fn update_priorities(&mut self, indices: &[u64], td_errors: &[f64]);

    /// Number of stored transitions.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_dims() {
        let t = Transition::new(vec![0.0; 9], vec![0.5; 32], 0.3, vec![0.1; 9], false);
        assert_eq!(t.state_dim(), 9);
        assert_eq!(t.action_dim(), 32);
    }

    #[test]
    fn batch_len() {
        let t = Transition::new(vec![0.0], vec![0.0], 0.0, vec![0.0], true);
        let b = Batch {
            transitions: vec![t.clone(), t],
            weights: vec![1.0; 2],
            indices: vec![0, 1],
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
