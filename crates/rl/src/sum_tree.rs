//! A sum tree (Fenwick-style complete binary tree) supporting O(log n)
//! priority updates and proportional sampling — the data structure behind
//! TD-error prioritized experience replay (Schaul et al., 2015).

/// Complete binary tree whose leaves hold priorities and whose internal
/// nodes hold subtree sums.
#[derive(Clone, Debug)]
pub struct SumTree {
    /// Number of leaves (capacity).
    n: usize,
    /// `tree[1..]` is used; node i has children 2i, 2i+1. Leaves occupy
    /// `n..2n`.
    tree: Vec<f64>,
}

impl SumTree {
    /// A tree with `n` leaves, all zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let cap = n.next_power_of_two();
        Self {
            n: cap,
            tree: vec![0.0; 2 * cap],
        }
    }

    /// Number of leaf slots.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Set leaf `i` to `priority` (≥ 0) and update ancestors.
    pub fn set(&mut self, i: usize, priority: f64) {
        assert!(i < self.n, "leaf index out of range");
        assert!(
            priority >= 0.0 && priority.is_finite(),
            "invalid priority {priority}"
        );
        let mut node = self.n + i;
        self.tree[node] = priority;
        node /= 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    /// Priority of leaf `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.tree[self.n + i]
    }

    /// Find the leaf where the prefix sum first exceeds `mass`
    /// (`0 ≤ mass < total`). Standard proportional-sampling descent.
    pub fn find(&self, mut mass: f64) -> usize {
        debug_assert!(self.total() > 0.0, "cannot sample from an empty tree");
        let mut node = 1;
        while node < self.n {
            let left = 2 * node;
            if mass < self.tree[left] {
                node = left;
            } else {
                mass -= self.tree[left];
                node = left + 1;
            }
        }
        node - self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn total_tracks_updates() {
        let mut t = SumTree::new(5);
        t.set(0, 1.0);
        t.set(3, 2.5);
        assert!((t.total() - 3.5).abs() < 1e-12);
        t.set(0, 0.5);
        assert!((t.total() - 3.0).abs() < 1e-12);
        assert_eq!(t.get(3), 2.5);
    }

    #[test]
    fn find_respects_proportions() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 0.0);
        t.set(2, 3.0);
        t.set(3, 0.0);
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 2);
        assert_eq!(t.find(3.9), 2);
    }

    #[test]
    fn zero_priority_leaves_never_sampled() {
        let mut t = SumTree::new(8);
        t.set(2, 1.0);
        t.set(5, 4.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen::<f64>() * t.total();
            let leaf = t.find(u);
            assert!(leaf == 2 || leaf == 5);
        }
    }

    #[test]
    fn sampling_frequency_matches_priority() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 9.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = [0usize; 2];
        for _ in 0..20_000 {
            let u: f64 = rng.gen::<f64>() * t.total();
            hits[t.find(u)] += 1;
        }
        let frac = hits[1] as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let t = SumTree::new(5);
        assert_eq!(t.capacity(), 8);
    }
}
