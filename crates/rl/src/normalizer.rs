//! Online state normalization: a running mean/variance tracker (Welford's
//! algorithm) used to standardize observations before they reach the
//! networks. Load averages span very different ranges between an idle and
//! a saturated cluster; normalizing them stabilizes critic training.

use serde::{Deserialize, Serialize};

/// Running per-dimension mean and variance (Welford).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunningNorm {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    /// Lower bound on the standard deviation to avoid division blow-ups.
    pub min_std: f64,
}

impl RunningNorm {
    pub fn new(dim: usize) -> Self {
        Self {
            count: 0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            min_std: 1e-4,
        }
    }

    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation into the statistics.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.count += 1;
        let n = self.count as f64;
        for i in 0..x.len() {
            let delta = x[i] - self.mean[i];
            self.mean[i] += delta / n;
            let delta2 = x[i] - self.mean[i];
            self.m2[i] += delta * delta2;
        }
    }

    /// Current mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current per-dimension standard deviation (0 before two samples).
    pub fn std(&self) -> Vec<f64> {
        if self.count < 2 {
            return vec![0.0; self.mean.len()];
        }
        let n = (self.count - 1) as f64;
        self.m2.iter().map(|v| (v / n).sqrt()).collect()
    }

    /// Standardize `x` with the running statistics: `(x − μ) / max(σ, ε)`.
    /// Before any update it is the identity.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        if self.count < 2 {
            return x.to_vec();
        }
        let std = self.std();
        x.iter()
            .zip(self.mean.iter().zip(&std))
            .map(|(&v, (&m, &s))| (v - m) / s.max(self.min_std))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_before_enough_data() {
        let n = RunningNorm::new(3);
        assert_eq!(n.normalize(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn statistics_match_batch_formulas() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen::<f64>() * 4.0 - 1.0, rng.gen::<f64>()])
            .collect();
        let mut norm = RunningNorm::new(2);
        for x in &data {
            norm.update(x);
        }
        for d in 0..2 {
            let mean: f64 = data.iter().map(|x| x[d]).sum::<f64>() / data.len() as f64;
            let var: f64 =
                data.iter().map(|x| (x[d] - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
            assert!((norm.mean()[d] - mean).abs() < 1e-10);
            assert!((norm.std()[d] - var.sqrt()).abs() < 1e-10);
        }
    }

    #[test]
    fn normalized_stream_is_standardized() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut norm = RunningNorm::new(1);
        let data: Vec<f64> = (0..2000).map(|_| 5.0 + 3.0 * rng.gen::<f64>()).collect();
        for &x in &data {
            norm.update(&[x]);
        }
        let z: Vec<f64> = data.iter().map(|&x| norm.normalize(&[x])[0]).collect();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let mut norm = RunningNorm::new(1);
        for _ in 0..10 {
            norm.update(&[7.0]);
        }
        let z = norm.normalize(&[7.0]);
        assert!(z[0].is_finite());
        assert_eq!(z[0], 0.0);
    }
}
