//! Exploration-noise processes for deterministic-policy agents.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Independent Gaussian noise `ε ~ N(0, σ²)` per action dimension — used
/// both for TD3 exploration and for the Twin-Q Optimizer's action
/// perturbation (Algorithm 1 of the paper).
#[derive(Clone, Debug)]
pub struct GaussianNoise {
    dim: usize,
    normal: Normal<f64>,
}

impl GaussianNoise {
    pub fn new(dim: usize, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        Self {
            dim,
            // PANIC-SAFETY: sigma is asserted non-negative above and
            // clamped to a strictly positive floor.
            normal: Normal::new(0.0, sigma.max(1e-12)).expect("valid sigma"),
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Sample one noise vector.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        (0..self.dim).map(|_| self.normal.sample(rng)).collect()
    }

    /// Add noise to `action` and clamp each dimension to `[0, 1]` (the
    /// normalized knob space).
    pub fn perturb(&self, action: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        assert_eq!(action.len(), self.dim);
        action
            .iter()
            .map(|&a| (a + self.normal.sample(rng)).clamp(0.0, 1.0))
            .collect()
    }
}

/// Ornstein–Uhlenbeck process — the temporally-correlated noise the
/// original DDPG paper used (kept for the CDBTune baseline).
#[derive(Clone, Debug)]
pub struct OrnsteinUhlenbeck {
    theta: f64,
    sigma: f64,
    mu: f64,
    state: Vec<f64>,
}

impl OrnsteinUhlenbeck {
    pub fn new(dim: usize, theta: f64, sigma: f64) -> Self {
        Self {
            theta,
            sigma,
            mu: 0.0,
            state: vec![0.0; dim],
        }
    }

    /// Reset the internal state (start of an episode).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Advance the process one step and return the noise vector.
    pub fn sample(&mut self, rng: &mut impl Rng) -> Vec<f64> {
        // PANIC-SAFETY: unit sigma is a valid Normal parameterization.
        let normal = Normal::new(0.0, 1.0).expect("unit sigma is valid");
        for v in &mut self.state {
            *v += self.theta * (self.mu - *v) + self.sigma * normal.sample(rng);
        }
        self.state.clone()
    }

    /// Add OU noise to an action, clamped to `[0, 1]`.
    pub fn perturb(&mut self, action: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        let n = self.sample(rng);
        action
            .iter()
            .zip(&n)
            .map(|(&a, &e)| (a + e).clamp(0.0, 1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_perturb_stays_in_unit_box() {
        let noise = GaussianNoise::new(32, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let a = vec![0.5; 32];
        for _ in 0..100 {
            let p = noise.perturb(&a, &mut rng);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gaussian_mean_and_std_are_right() {
        let noise = GaussianNoise::new(1, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| noise.sample(&mut rng)[0]).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.2).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn ou_noise_is_temporally_correlated() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.15, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..5000).map(|_| ou.sample(&mut rng)[0]).collect();
        // Lag-1 autocorrelation should be clearly positive (≈ 1 − θ).
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|v| (v - mean).powi(2)).sum();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.5, "autocorrelation {rho}");
    }

    #[test]
    fn ou_reset_zeroes_state() {
        let mut ou = OrnsteinUhlenbeck::new(3, 0.15, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            ou.sample(&mut rng);
        }
        ou.reset();
        assert!(ou.state.iter().all(|&v| v == 0.0));
    }
}
