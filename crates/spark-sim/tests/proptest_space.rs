//! Property-based tests of the knob space and YARN negotiation — the
//! contract every tuner's action vector relies on.

use proptest::prelude::*;
use spark_sim::{negotiate, Cluster, KnobKind, KnobSpace, KnobValue};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_action_denormalizes_to_a_valid_config(
        action in proptest::collection::vec(-0.5f64..1.5, 32)
    ) {
        let space = KnobSpace::pipeline();
        let cfg = space.denormalize(&action);
        for (def, v) in space.defs().iter().zip(&cfg.values) {
            match (&def.kind, v) {
                (KnobKind::Int { lo, hi, .. }, KnobValue::Int(x)) => {
                    prop_assert!(x >= lo && x <= hi, "{} = {x}", def.name)
                }
                (KnobKind::Float { lo, hi }, KnobValue::Float(x)) => {
                    prop_assert!(x >= lo && x <= hi, "{} = {x}", def.name)
                }
                (KnobKind::Bool, KnobValue::Bool(_)) => {}
                (KnobKind::Categorical { choices }, KnobValue::Cat(c)) => {
                    prop_assert!(*c < choices.len())
                }
                _ => prop_assert!(false, "kind/value mismatch for {}", def.name),
            }
        }
    }

    #[test]
    fn normalize_denormalize_is_idempotent(
        action in proptest::collection::vec(0.0f64..1.0, 32)
    ) {
        // One round of denormalize → normalize → denormalize must be a
        // fixed point (quantization happens exactly once).
        let space = KnobSpace::pipeline();
        let cfg1 = space.denormalize(&action);
        let norm = space.normalize(&cfg1);
        let cfg2 = space.denormalize(&norm);
        for (i, (a, b)) in cfg1.values.iter().zip(&cfg2.values).enumerate() {
            match (a, b) {
                (KnobValue::Float(x), KnobValue::Float(y)) => {
                    prop_assert!((x - y).abs() < 1e-9, "knob {i}")
                }
                _ => prop_assert_eq!(a, b, "knob {}", i),
            }
        }
    }

    #[test]
    fn negotiation_never_over_allocates(
        action in proptest::collection::vec(0.0f64..1.0, 32)
    ) {
        let space = KnobSpace::pipeline();
        let cluster = Cluster::cluster_a();
        let cfg = space.denormalize(&action);
        if let Ok(plan) = negotiate(&cfg, &cluster) {
            let requested = cfg.values[spark_sim::idx::EXECUTOR_INSTANCES].as_i64() as u32;
            prop_assert!(plan.total_executors <= requested);
            prop_assert!(plan.total_executors >= 1);
            prop_assert_eq!(
                plan.executors_per_node.iter().sum::<u32>(),
                plan.total_executors
            );
            // No node may exceed its physical core count.
            for (execs, node) in plan.executors_per_node.iter().zip(&cluster.nodes) {
                prop_assert!(execs * plan.executor_cores <= node.cores);
            }
            // The container always covers the heap.
            prop_assert!(plan.container_memory_mb >= plan.executor_heap_mb);
            prop_assert_eq!(
                plan.total_slots,
                plan.total_executors * plan.slots_per_executor
            );
        }
    }
}
