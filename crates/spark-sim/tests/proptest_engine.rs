//! Property-based tests of the execution engine: every configuration, no
//! matter how hostile, must produce a finite, positive, reproducible
//! outcome.

use proptest::prelude::*;
use spark_sim::{simulate, Cluster, InputSize, KnobSpace, Workload, WorkloadKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_config_yields_finite_positive_duration(
        action in proptest::collection::vec(0.0f64..1.0, 32),
        seed in 0u64..1000,
    ) {
        let space = KnobSpace::pipeline();
        let cfg = space.denormalize(&action);
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let out = simulate(&Cluster::cluster_a(), &cfg, &w.job_spec(), seed);
        prop_assert!(out.duration_s.is_finite());
        prop_assert!(out.duration_s > 0.0);
        prop_assert!(out.metrics.cpu_util >= 0.0 && out.metrics.cpu_util <= 1.0);
        prop_assert!(out.metrics.cache_hit >= 0.0 && out.metrics.cache_hit <= 1.0);
        for l in &out.metrics.load_avg {
            prop_assert!(l.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn same_seed_is_bit_reproducible(
        action in proptest::collection::vec(0.0f64..1.0, 32),
        seed in 0u64..100,
    ) {
        let space = KnobSpace::pipeline();
        let cfg = space.denormalize(&action);
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let a = simulate(&Cluster::cluster_a(), &cfg, &w.job_spec(), seed);
        let b = simulate(&Cluster::cluster_a(), &cfg, &w.job_spec(), seed);
        prop_assert_eq!(a.duration_s, b.duration_s);
        prop_assert_eq!(a.failed, b.failed);
    }

    #[test]
    fn bigger_inputs_never_run_faster_on_sane_configs(
        seed in 0u64..50,
    ) {
        // Use the default config (always feasible).
        let space = KnobSpace::pipeline();
        let cfg = space.default_config();
        for kind in WorkloadKind::all() {
            let d1 = simulate(
                &Cluster::cluster_a(), &cfg,
                &Workload::new(kind, InputSize::D1).job_spec(), seed);
            let d3 = simulate(
                &Cluster::cluster_a(), &cfg,
                &Workload::new(kind, InputSize::D3).job_spec(), seed);
            if d1.failed.is_none() && d3.failed.is_none() {
                prop_assert!(d3.duration_s > d1.duration_s * 0.9, "{kind}");
            }
        }
    }
}
