//! Edge cases of the execution engine: degenerate clusters, tiny inputs,
//! single-stage jobs, and DAG levels sharing slots.

use spark_sim::{
    simulate, simulate_traced, Cluster, DataSink, DataSource, InputSize, JobSpec, KnobSpace, Node,
    StageSpec, TaskSizing, Workload, WorkloadKind,
};

fn one_stage_job(mb: f64) -> JobSpec {
    JobSpec::chain(
        vec![StageSpec {
            name: "only",
            read: DataSource::Hdfs { mb },
            write: DataSink::Driver,
            sizing: TaskSizing::ByInputSplits,
            cpu_per_mb: 0.03,
            ser_fraction: 0.3,
            sort_like: false,
            cache_out_mb: 0.0,
            exec_mem_per_input_mb: 0.5,
            native_spike_mb: 100.0,
        }],
        0.0,
        0.5,
    )
}

#[test]
fn single_node_cluster_works() {
    let cluster = Cluster::homogeneous(
        "tiny",
        1,
        Node {
            cores: 8,
            memory_mb: 8192,
            disk_mbps: 120.0,
            net_mbps: 117.0,
            cpu_speed: 1.0,
        },
    );
    let space = KnobSpace::pipeline();
    let out = simulate(&cluster, &space.default_config(), &one_stage_job(512.0), 1);
    assert!(out.failed.is_none(), "{:?}", out.failed);
    assert!(out.duration_s > 0.0 && out.duration_s.is_finite());
    assert_eq!(out.metrics.load_avg.len(), 1);
}

#[test]
fn sub_block_input_yields_one_task() {
    let space = KnobSpace::pipeline();
    let out = simulate_traced(
        &Cluster::cluster_a(),
        &space.default_config(),
        &one_stage_job(5.0), // far below the 128 MB block size
        2,
    );
    assert!(out.failed.is_none());
    assert_eq!(out.task_traces.len(), 1, "one split, one task");
}

#[test]
fn concurrent_level_stages_both_get_slots() {
    // PageRank's level 0 has two independent stages; both must actually
    // schedule tasks (i.e. slot sharing cannot starve either).
    let space = KnobSpace::pipeline();
    let w = Workload::new(WorkloadKind::PageRank, InputSize::D1);
    let out = simulate_traced(
        &Cluster::cluster_a(),
        &space.default_config(),
        &w.job_spec(),
        3,
    );
    assert!(out.failed.is_none());
    let links: usize = out
        .task_traces
        .iter()
        .filter(|t| t.stage == "pr-build-links")
        .count();
    let ranks: usize = out
        .task_traces
        .iter()
        .filter(|t| t.stage == "pr-init-ranks")
        .count();
    assert!(links > 0 && ranks > 0, "links {links}, ranks {ranks}");
}

#[test]
fn ten_node_cluster_spreads_tasks() {
    let cluster = Cluster::homogeneous(
        "wide",
        10,
        Node {
            cores: 8,
            memory_mb: 8192,
            disk_mbps: 200.0,
            net_mbps: 117.0,
            cpu_speed: 1.0,
        },
    );
    let space = KnobSpace::pipeline();
    let mut cfg = space.default_config();
    cfg.values[spark_sim::idx::EXECUTOR_INSTANCES] = spark_sim::KnobValue::Int(20);
    cfg.values[spark_sim::idx::EXECUTOR_CORES] = spark_sim::KnobValue::Int(2);
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D2);
    let out = simulate_traced(&cluster, &cfg, &w.job_spec(), 4);
    assert!(out.failed.is_none());
    let nodes_used: std::collections::HashSet<usize> =
        out.task_traces.iter().map(|t| t.node).collect();
    assert!(nodes_used.len() >= 5, "tasks should spread: {nodes_used:?}");
    assert_eq!(out.metrics.load_avg.len(), 10);
}

#[test]
fn extreme_knob_corners_never_hang_or_panic() {
    let space = KnobSpace::pipeline();
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let job = w.job_spec();
    for corner in [0.0, 1.0] {
        let cfg = space.denormalize(&vec![corner; 32]);
        let out = simulate(&Cluster::cluster_a(), &cfg, &job, 5);
        assert!(out.duration_s.is_finite());
    }
    // Alternating corners stress the interactions.
    let alt: Vec<f64> = (0..32).map(|i| (i % 2) as f64).collect();
    let out = simulate(&Cluster::cluster_a(), &space.denormalize(&alt), &job, 6);
    assert!(out.duration_s.is_finite());
}
