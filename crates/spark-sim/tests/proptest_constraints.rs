//! Property tests of the constraint model (`spark_sim::constraints`):
//! the repair projection must be *total* (defined for every input,
//! including non-finite garbage), land in the feasible region, and be
//! idempotent — `repair(repair(a)) == repair(a)`. These are the
//! guarantees the guardrail layer's safety argument rests on.

use proptest::prelude::*;
use spark_sim::{repair, validate, KnobSpace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For arbitrary action vectors — in range, out of range, it does
    /// not matter — `repair` returns a vector in `[0,1]^32` whose
    /// denormalized configuration satisfies every constraint rule.
    #[test]
    fn repair_is_total_and_lands_feasible(
        action in proptest::collection::vec(-0.5f64..1.5, 32)
    ) {
        let space = KnobSpace::pipeline();
        let r = repair(&space, &action);
        prop_assert_eq!(r.action.len(), 32);
        prop_assert!(r.action.iter().all(|v| (0.0..=1.0).contains(v)));
        let cfg = space.denormalize(&r.action);
        let violations = validate(&cfg);
        prop_assert!(violations.is_empty(), "still infeasible: {violations:?}");
    }

    /// `validate(repair(a))` holds and the projection is a fixed point:
    /// repairing an already-repaired action changes nothing and applies
    /// no rules.
    #[test]
    fn repair_is_idempotent(
        action in proptest::collection::vec(0.0f64..1.0, 32)
    ) {
        let space = KnobSpace::pipeline();
        let once = repair(&space, &action);
        let twice = repair(&space, &once.action);
        prop_assert!(twice.applied.is_empty(),
            "second repair applied {:?}", twice.applied);
        prop_assert_eq!(&twice.action, &once.action);
    }

    /// Non-finite coordinates (NaN, ±inf — e.g. from a diverged policy
    /// network) are sanitized rather than propagated: the repaired
    /// vector is still finite, in range, and feasible.
    #[test]
    fn repair_absorbs_non_finite_coordinates(
        action in proptest::collection::vec(0.0f64..1.0, 32),
        poison_at in 0usize..32,
        poison_kind in 0usize..3,
    ) {
        let mut action = action;
        action[poison_at] = match poison_kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let space = KnobSpace::pipeline();
        let r = repair(&space, &action);
        prop_assert!(r.action.iter().all(|v| v.is_finite()));
        prop_assert!(r.action.iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert!(validate(&space.denormalize(&r.action)).is_empty());
    }

    /// A feasible action passes through `repair` untouched (the guardrail
    /// must not perturb recommendations that were already safe).
    #[test]
    fn feasible_actions_pass_through_unchanged(
        action in proptest::collection::vec(0.0f64..1.0, 32)
    ) {
        let space = KnobSpace::pipeline();
        if validate(&space.denormalize(&action)).is_empty() {
            let r = repair(&space, &action);
            prop_assert!(!r.changed());
            prop_assert_eq!(&r.action, &action);
        }
    }
}
