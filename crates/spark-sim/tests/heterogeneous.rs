//! Heterogeneous-cluster behaviour: the engine must actually run tasks at
//! node-specific speeds, and the scheduler's slot assignment must matter.

use spark_sim::{
    idx, simulate, simulate_traced, Cluster, InputSize, KnobSpace, KnobValue, Workload,
    WorkloadKind,
};

fn cfg() -> spark_sim::Configuration {
    let space = KnobSpace::pipeline();
    let mut c = space.default_config();
    c.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
    c.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(3072);
    c.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(9);
    c.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(96);
    c.values[idx::NM_MEMORY_MB] = KnobValue::Int(6144);
    c.values[idx::NM_VCORES] = KnobValue::Int(12);
    c
}

#[test]
fn heterogeneous_cluster_completes_jobs() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let out = simulate(
        &Cluster::cluster_c_heterogeneous(),
        &cfg(),
        &w.job_spec(),
        1,
    );
    assert!(out.failed.is_none(), "{:?}", out.failed);
    assert!(out.duration_s.is_finite() && out.duration_s > 0.0);
}

#[test]
fn tasks_on_the_slow_node_take_longer() {
    let w = Workload::new(WorkloadKind::KMeans, InputSize::D1);
    let out = simulate_traced(
        &Cluster::cluster_c_heterogeneous(),
        &cfg(),
        &w.job_spec(),
        2,
    );
    assert!(out.failed.is_none());
    // Compare mean task duration on the fast node (0) vs the slow node (2)
    // within the same stage (same work per task).
    let mut by_node = [Vec::new(), Vec::new(), Vec::new()];
    for t in out
        .task_traces
        .iter()
        .filter(|t| t.stage.starts_with("km-iter"))
    {
        by_node[t.node].push(t.duration_s);
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if !by_node[0].is_empty() && !by_node[2].is_empty() {
        assert!(
            mean(&by_node[2]) > mean(&by_node[0]) * 1.2,
            "slow node {:.2}s vs fast node {:.2}s",
            mean(&by_node[2]),
            mean(&by_node[0])
        );
    }
}

#[test]
fn homogeneous_node_times_are_identical_across_nodes() {
    // Regression guard for the per-node refactor: on a homogeneous cluster
    // the node index must not affect the base duration (only straggler
    // noise differs between tasks).
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let out = simulate_traced(&Cluster::cluster_a(), &cfg(), &w.job_spec(), 3);
    // Group by (stage, local) — durations differ only by the multiplier,
    // whose range is bounded; the minimum per node approximates the base.
    let mut mins = [f64::INFINITY; 3];
    for t in out
        .task_traces
        .iter()
        .filter(|t| t.stage == "wc-map" && t.local)
    {
        mins[t.node] = mins[t.node].min(t.duration_s);
    }
    let lo = mins.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = mins.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        hi / lo < 1.15,
        "node base times should match on Cluster-A: {mins:?}"
    );
}

#[test]
fn heterogeneous_is_slower_than_all_fast_variant() {
    let fast = Cluster::homogeneous(
        "all-fast",
        3,
        spark_sim::Node {
            cores: 16,
            memory_mb: 16 * 1024,
            disk_mbps: 450.0,
            net_mbps: 117.0,
            cpu_speed: 1.2,
        },
    );
    let w = Workload::new(WorkloadKind::KMeans, InputSize::D1);
    let het: f64 = (0..4)
        .map(|s| {
            simulate(
                &Cluster::cluster_c_heterogeneous(),
                &cfg(),
                &w.job_spec(),
                s,
            )
            .duration_s
        })
        .sum::<f64>()
        / 4.0;
    let fst: f64 = (0..4)
        .map(|s| simulate(&fast, &cfg(), &w.job_spec(), s).duration_s)
        .sum::<f64>()
        / 4.0;
    assert!(fst < het, "all-fast {fst:.1}s vs heterogeneous {het:.1}s");
}
