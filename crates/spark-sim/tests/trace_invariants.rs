//! Scheduler-invariant tests over the task traces: no slot runs two tasks
//! at once, every task runs exactly once, and locality accounting is
//! consistent with the block placement.

use spark_sim::{simulate_traced, Cluster, InputSize, KnobSpace, Workload, WorkloadKind};
use std::collections::HashMap;

fn traced(kind: WorkloadKind, seed: u64) -> spark_sim::SimOutcome {
    let space = KnobSpace::pipeline();
    let mut action = space.normalize(&space.default_config());
    action[spark_sim::idx::EXECUTOR_INSTANCES] = 0.4;
    action[spark_sim::idx::EXECUTOR_CORES] = 0.4;
    action[spark_sim::idx::EXECUTOR_MEMORY_MB] = 0.7;
    action[spark_sim::idx::NM_MEMORY_MB] = 1.0;
    let cfg = space.denormalize(&action);
    let w = Workload::new(kind, InputSize::D1);
    simulate_traced(&Cluster::cluster_a(), &cfg, &w.job_spec(), seed)
}

#[test]
fn traces_are_recorded_for_every_task() {
    let out = traced(WorkloadKind::TeraSort, 1);
    assert!(out.failed.is_none());
    assert!(!out.task_traces.is_empty());
    // Each (stage, task) appears exactly once.
    let mut seen: HashMap<(String, usize), usize> = HashMap::new();
    for t in &out.task_traces {
        *seen.entry((t.stage.clone(), t.task)).or_default() += 1;
    }
    assert!(seen.values().all(|&c| c == 1), "a task ran twice");
}

#[test]
fn no_slot_overlap_within_a_stage() {
    let out = traced(WorkloadKind::WordCount, 2);
    let mut by_slot: HashMap<(String, usize), Vec<(f64, f64)>> = HashMap::new();
    for t in &out.task_traces {
        by_slot
            .entry((t.stage.clone(), t.slot))
            .or_default()
            .push((t.start_s, t.start_s + t.duration_s));
    }
    for ((stage, slot), mut spans) in by_slot {
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-9,
                "slot {slot} of {stage} overlaps: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn untraced_simulation_carries_no_traces() {
    let space = KnobSpace::pipeline();
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let out = spark_sim::simulate(
        &Cluster::cluster_a(),
        &space.default_config(),
        &w.job_spec(),
        3,
    );
    assert!(out.task_traces.is_empty());
}

#[test]
fn tracing_does_not_change_the_outcome() {
    let space = KnobSpace::pipeline();
    let cfg = space.default_config();
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let a = spark_sim::simulate(&Cluster::cluster_a(), &cfg, &w.job_spec(), 4);
    let b = simulate_traced(&Cluster::cluster_a(), &cfg, &w.job_spec(), 4);
    assert_eq!(a.duration_s, b.duration_s);
    assert_eq!(a.stage_times, b.stage_times);
}

#[test]
fn full_replication_makes_every_task_local() {
    // dfs.replication = 3 on 3 nodes ⇒ every block has a replica
    // everywhere, so no task can be remote.
    let out = traced(WorkloadKind::TeraSort, 5);
    assert!(out.task_traces.iter().all(|t| t.local));
}

#[test]
fn tasks_start_at_or_after_zero_and_nodes_are_valid() {
    let out = traced(WorkloadKind::PageRank, 6);
    for t in &out.task_traces {
        assert!(t.start_s >= 0.0);
        assert!(t.duration_s > 0.0);
        assert!(t.node < 3);
    }
}
