//! Sensitivity tests: each knob family must influence simulated execution
//! in the direction the real system's mechanics dictate. These pin the
//! response surface the tuners learn against.

use spark_sim::{
    idx, simulate, Cluster, Configuration, InputSize, KnobSpace, KnobValue, Workload, WorkloadKind,
};

fn base() -> Configuration {
    let space = KnobSpace::pipeline();
    let mut cfg = space.default_config();
    cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
    cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(3072);
    cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(9);
    cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(96);
    cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
    cfg.values[idx::NM_VCORES] = KnobValue::Int(14);
    cfg
}

/// Mean duration over a few seeds (smooths straggler noise).
fn run(cfg: &Configuration, kind: WorkloadKind) -> f64 {
    let w = Workload::new(kind, InputSize::D1);
    let job = w.job_spec();
    (0..6)
        .map(|s| simulate(&Cluster::cluster_a(), cfg, &job, 100 + s).duration_s)
        .sum::<f64>()
        / 6.0
}

#[test]
fn more_executors_speed_up_cpu_bound_work() {
    // PageRank's iterations are CPU-bound over cached data, so extra slots
    // translate into fewer waves. (TeraSort, by contrast, is limited by
    // the replicated shuffle/write traffic on the 1 GbE network, where
    // extra slots mostly add contention — also a property of the real
    // system.)
    let mut few = base();
    few.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(2);
    let many = base();
    assert!(run(&many, WorkloadKind::PageRank) < run(&few, WorkloadKind::PageRank));
}

#[test]
fn parallelism_too_low_wastes_slots() {
    let mut low = base();
    low.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(8);
    let ok = base();
    // 36 slots and 8 reduce tasks leave most of the cluster idle.
    assert!(run(&ok, WorkloadKind::TeraSort) < run(&low, WorkloadKind::TeraSort));
}

#[test]
fn kryo_beats_java_on_shuffle_heavy_work() {
    let mut java = base();
    java.values[idx::SERIALIZER] = KnobValue::Cat(0);
    let mut kryo = base();
    kryo.values[idx::SERIALIZER] = KnobValue::Cat(1);
    assert!(run(&kryo, WorkloadKind::TeraSort) < run(&java, WorkloadKind::TeraSort));
}

#[test]
fn tiny_shuffle_buffer_hurts() {
    let mut tiny = base();
    tiny.values[idx::SHUFFLE_FILE_BUFFER_KB] = KnobValue::Int(16);
    let mut big = base();
    big.values[idx::SHUFFLE_FILE_BUFFER_KB] = KnobValue::Int(512);
    assert!(run(&big, WorkloadKind::TeraSort) <= run(&tiny, WorkloadKind::TeraSort));
}

#[test]
fn memory_fraction_matters_for_cache_heavy_kmeans() {
    let mut small = base();
    small.values[idx::MEMORY_FRACTION] = KnobValue::Float(0.3);
    small.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(1536);
    let mut large = base();
    large.values[idx::MEMORY_FRACTION] = KnobValue::Float(0.85);
    large.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(4096);
    assert!(
        run(&large, WorkloadKind::KMeans) * 1.3 < run(&small, WorkloadKind::KMeans),
        "cache-starved KMeans must recompute and crawl"
    );
}

#[test]
fn speculation_tames_the_straggler_tail() {
    let mut on = base();
    on.values[idx::SPECULATION] = KnobValue::Bool(true);
    let mut off = base();
    off.values[idx::SPECULATION] = KnobValue::Bool(false);
    // Speculation can only help in expectation (it clamps the tail).
    assert!(run(&on, WorkloadKind::WordCount) <= run(&off, WorkloadKind::WordCount) * 1.02);
}

#[test]
fn task_cpus_starves_cpu_bound_kmeans() {
    // task.cpus reserves cores per task: at 4 it quarters the concurrent
    // tasks. KMeans' distance computation is pure CPU over cached data, so
    // the lost concurrency shows up directly. (On IO-heavy workloads the
    // reduced disk contention can cancel the loss — also true in practice.)
    let mut fat = base();
    fat.values[idx::TASK_CPUS] = KnobValue::Int(4);
    assert!(run(&base(), WorkloadKind::KMeans) < run(&fat, WorkloadKind::KMeans));
}

#[test]
fn block_size_drives_split_count_and_utilization() {
    // With 36 slots, 256 MB blocks yield only 13 input splits for a
    // 3.2 GB file — most of the cluster idles. 32 MB blocks yield 100
    // splits and keep every slot busy.
    let mut small = base();
    small.values[idx::DFS_BLOCK_SIZE_MB] = KnobValue::Int(32);
    let mut big = base();
    big.values[idx::DFS_BLOCK_SIZE_MB] = KnobValue::Int(256);
    let t_small = run(&small, WorkloadKind::WordCount);
    let t_big = run(&big, WorkloadKind::WordCount);
    assert!(t_small < t_big, "32MB blocks {t_small} vs 256MB {t_big}");

    // With only 2 single-core executors the parallelism argument vanishes
    // and small blocks just pay more per-task overhead.
    let mut small2 = small.clone();
    small2.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(2);
    small2.values[idx::EXECUTOR_CORES] = KnobValue::Int(1);
    let mut big2 = big.clone();
    big2.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(2);
    big2.values[idx::EXECUTOR_CORES] = KnobValue::Int(1);
    let t_small2 = run(&small2, WorkloadKind::WordCount);
    let t_big2 = run(&big2, WorkloadKind::WordCount);
    assert!(
        t_big2 < t_small2 * 1.1,
        "few slots: 256MB {t_big2} should not lose to 32MB {t_small2}"
    );
}

#[test]
fn vmem_ratio_too_low_risks_kills() {
    let mut risky = base();
    risky.values[idx::VMEM_PMEM_RATIO] = KnobValue::Float(1.5);
    risky.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(1024);
    let w = Workload::new(WorkloadKind::KMeans, InputSize::D2);
    let job = w.job_spec();
    let mut kills = 0;
    for s in 0..10 {
        let out = simulate(&Cluster::cluster_a(), &risky, &job, 200 + s);
        kills += out.metrics.container_kills;
        if out.failed.is_some() {
            kills += 1;
        }
    }
    assert!(
        kills > 0,
        "a tight vmem ratio with small containers must cause kills"
    );
}

#[test]
fn compression_reduces_shuffle_bytes_on_the_wire() {
    let mut on = base();
    on.values[idx::SHUFFLE_COMPRESS] = KnobValue::Bool(true);
    let mut off = base();
    off.values[idx::SHUFFLE_COMPRESS] = KnobValue::Bool(false);
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let job = w.job_spec();
    let m_on = simulate(&Cluster::cluster_a(), &on, &job, 7)
        .metrics
        .shuffle_mb;
    let m_off = simulate(&Cluster::cluster_a(), &off, &job, 7)
        .metrics
        .shuffle_mb;
    assert!(
        m_on < m_off * 0.7,
        "compressed shuffle {m_on} vs raw {m_off}"
    );
}

#[test]
fn driver_cores_speed_up_task_dispatch_heavy_jobs() {
    let mut one = base();
    one.values[idx::DRIVER_CORES] = KnobValue::Int(1);
    one.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(512);
    let mut eight = base();
    eight.values[idx::DRIVER_CORES] = KnobValue::Int(8);
    eight.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(512);
    assert!(run(&eight, WorkloadKind::PageRank) <= run(&one, WorkloadKind::PageRank));
}
