//! Run-time metrics collected during a simulated job: the per-node load
//! averages that form the DRL state (the paper samples `uptime` on each
//! server) plus the internal metrics OtterTune-style workload mapping uses.

use serde::{Deserialize, Serialize};

/// Metrics of one simulated job execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Wall-clock duration of the job in seconds.
    pub duration_s: f64,
    /// Per-node `[1, 5, 15]`-minute load averages at job end.
    pub load_avg: Vec<[f64; 3]>,
    /// Mean CPU utilization across the cluster in `[0,1]`.
    pub cpu_util: f64,
    /// Mean IO-wait fraction across the cluster in `[0,1]`.
    pub io_wait: f64,
    /// MB read from HDFS.
    pub hdfs_read_mb: f64,
    /// MB written to HDFS (first replica).
    pub hdfs_write_mb: f64,
    /// MB of shuffle data moved (post-compression).
    pub shuffle_mb: f64,
    /// MB spilled to disk across all tasks.
    pub spill_mb: f64,
    /// Fraction of task CPU time spent in GC.
    pub gc_frac: f64,
    /// Cache hit ratio over cached-RDD reads (1.0 when nothing is cached).
    pub cache_hit: f64,
    /// Containers killed by the pmem/vmem checks.
    pub container_kills: u32,
    /// Tasks launched (including speculative copies).
    pub tasks_launched: u32,
    /// Mean task duration in seconds.
    pub avg_task_s: f64,
}

impl RunMetrics {
    /// An all-idle metrics record (pre-run state).
    pub fn idle(num_nodes: usize) -> Self {
        RunMetrics {
            duration_s: 0.0,
            load_avg: vec![[0.05, 0.05, 0.05]; num_nodes],
            cpu_util: 0.0,
            io_wait: 0.0,
            hdfs_read_mb: 0.0,
            hdfs_write_mb: 0.0,
            shuffle_mb: 0.0,
            spill_mb: 0.0,
            gc_frac: 0.0,
            cache_hit: 1.0,
            container_kills: 0,
            tasks_launched: 0,
            avg_task_s: 0.0,
        }
    }

    /// The DRL state vector: per-node load averages, normalized by core
    /// count so values are comparable across clusters (paper Section 3.1).
    pub fn state_vector(&self, cores_per_node: u32) -> Vec<f64> {
        let c = cores_per_node.max(1) as f64;
        self.load_avg
            .iter()
            .flat_map(|l| l.iter().map(move |&v| (v / c).clamp(0.0, 2.0)))
            .collect()
    }

    /// Internal metric vector used by OtterTune-style workload mapping.
    /// Log-scaled byte counters so distances are not dominated by raw size.
    pub fn metric_vector(&self) -> Vec<f64> {
        fn logmb(v: f64) -> f64 {
            (1.0 + v.max(0.0)).ln()
        }
        vec![
            self.cpu_util,
            self.io_wait,
            logmb(self.hdfs_read_mb),
            logmb(self.hdfs_write_mb),
            logmb(self.shuffle_mb),
            logmb(self.spill_mb),
            self.gc_frac,
            self.cache_hit,
            self.container_kills as f64,
            logmb(self.tasks_launched as f64),
            self.avg_task_s.min(300.0) / 300.0,
        ]
    }

    /// Dimension of [`metric_vector`](Self::metric_vector).
    pub const METRIC_DIM: usize = 11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_state_is_low_load() {
        let m = RunMetrics::idle(3);
        let s = m.state_vector(16);
        assert_eq!(s.len(), 9);
        assert!(s.iter().all(|&v| v < 0.01));
    }

    #[test]
    fn metric_vector_has_declared_dim() {
        let m = RunMetrics::idle(3);
        assert_eq!(m.metric_vector().len(), RunMetrics::METRIC_DIM);
    }

    #[test]
    fn state_vector_normalizes_by_cores() {
        let mut m = RunMetrics::idle(1);
        m.load_avg[0] = [8.0, 6.0, 4.0];
        let s = m.state_vector(16);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((s[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn metric_vector_is_finite_for_extremes() {
        let mut m = RunMetrics::idle(3);
        m.hdfs_read_mb = 1e9;
        m.spill_mb = 0.0;
        m.avg_task_s = 1e6;
        assert!(m.metric_vector().iter().all(|v| v.is_finite()));
    }
}
