//! Deterministic fault injection for the tuning environment.
//!
//! Real Spark/YARN clusters exhibit stragglers, lost heartbeats, flaky AM
//! restarts and dead NodeManagers; tuners that assume every evaluation
//! succeeds exactly once abort or mislearn under that noise. A
//! [`FaultPlan`] is a *schedule* of such faults keyed by the environment's
//! evaluation counter: the same `(plan, seed)` pair perturbs a run in
//! exactly the same way every time, so chaos experiments stay bit-for-bit
//! reproducible under the frozen telemetry clock.
//!
//! Faults are injected at the [`crate::SparkEnv`] boundary (after the
//! discrete-event engine finishes, before pricing), so *any* tuner — DRL
//! or baseline — can be run under chaos without code changes.

use serde::{Deserialize, Serialize};

/// One injectable fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// A node dies and stays down for `evals` consecutive evaluations:
    /// its work is redistributed (the job slows down by `n/(n-1)`) and its
    /// uptime probe is lost (NaN load-average entries) while down.
    NodeCrash { node: usize, evals: u64 },
    /// One node runs `slowdown`× slower for a single evaluation; the
    /// critical path stretches by its share of the work and the node's
    /// reported load average spikes.
    Straggler { node: usize, slowdown: f64 },
    /// The job dies from a transient environment error (lost heartbeat,
    /// AM restart) after completing a `progress` fraction of its run.
    /// Unlike configuration-caused failures, an immediate retry of the
    /// same configuration may succeed.
    Transient { progress: f64 },
    /// The uptime probe of one node is lost for a single evaluation: the
    /// corresponding state entries come back NaN and must be imputed
    /// before they reach a replay buffer.
    ProbeLoss { node: usize },
    /// A measurement-noise spike: the observed duration is multiplied by
    /// a deterministic pseudo-random factor in `[1-m/2, 1+m/2]`.
    NoiseSpike { magnitude: f64 },
}

impl Fault {
    /// Stable lowercase label, used in `fault.injected` telemetry events.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::NodeCrash { .. } => "node_crash",
            Fault::Straggler { .. } => "straggler",
            Fault::Transient { .. } => "transient",
            Fault::ProbeLoss { .. } => "probe_loss",
            Fault::NoiseSpike { .. } => "noise_spike",
        }
    }
}

/// A fault scheduled at a specific evaluation index (1-based: the first
/// call to [`crate::SparkEnv::evaluate`] is eval 1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at_eval: u64,
    pub fault: Fault,
}

/// What a plan injected into one evaluation (telemetry + tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InjectionSummary {
    /// The evaluation was killed by a transient environment fault.
    pub transient: bool,
    /// Straggler faults applied.
    pub stragglers: u32,
    /// Uptime probes lost (probe-loss faults plus down crashed nodes).
    pub probes_lost: u32,
    /// Noise spikes applied.
    pub noise_spikes: u32,
    /// Nodes down due to an active crash window.
    pub crashed_nodes: u32,
}

impl InjectionSummary {
    /// True when no fault touched the evaluation.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// A seeded, schedule-driven fault plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Display name (`mixed`, `flaky`, ... or `custom`).
    pub name: String,
    /// Seed for the plan's own pseudo-randomness (noise-spike draws).
    pub seed: u64,
    /// The schedule, keyed by evaluation index.
    pub events: Vec<FaultEvent>,
}

/// Names accepted by [`FaultPlan::named`].
pub const PLAN_NAMES: &[&str] = &["none", "mixed", "flaky", "stragglers", "blackout"];

impl FaultPlan {
    /// The empty plan: chaos harness plumbing with no faults.
    pub fn none(seed: u64) -> Self {
        Self {
            name: "none".to_string(),
            seed,
            events: Vec::new(),
        }
    }

    /// A custom plan built from an explicit schedule.
    pub fn custom(seed: u64, events: Vec<FaultEvent>) -> Self {
        Self {
            name: "custom".to_string(),
            seed,
            events,
        }
    }

    /// One of the built-in named plans, or `None` for an unknown name.
    ///
    /// `mixed` is the acceptance plan: within the first handful of
    /// evaluations it injects at least one transient failure, one
    /// straggler and one probe loss (plus a noise spike and a two-eval
    /// node crash), so a 5-step online session exercises every resilience
    /// path.
    pub fn named(name: &str, seed: u64) -> Option<Self> {
        let events = match name {
            "none" => Vec::new(),
            "mixed" => vec![
                FaultEvent {
                    at_eval: 2,
                    fault: Fault::Transient { progress: 0.6 },
                },
                FaultEvent {
                    at_eval: 4,
                    fault: Fault::Straggler {
                        node: 1,
                        slowdown: 3.0,
                    },
                },
                FaultEvent {
                    at_eval: 5,
                    fault: Fault::ProbeLoss { node: 2 },
                },
                FaultEvent {
                    at_eval: 6,
                    fault: Fault::NoiseSpike { magnitude: 0.5 },
                },
                FaultEvent {
                    at_eval: 6,
                    fault: Fault::NodeCrash { node: 0, evals: 2 },
                },
            ],
            "flaky" => (0..4)
                .map(|i| FaultEvent {
                    at_eval: 2 + 2 * i,
                    fault: Fault::Transient { progress: 0.5 },
                })
                .collect(),
            "stragglers" => (0..6)
                .map(|i| FaultEvent {
                    at_eval: 2 + i,
                    fault: Fault::Straggler {
                        node: (i as usize) % 3,
                        slowdown: 2.0 + 0.5 * i as f64,
                    },
                })
                .collect(),
            "blackout" => vec![
                FaultEvent {
                    at_eval: 2,
                    fault: Fault::NodeCrash { node: 0, evals: 4 },
                },
                FaultEvent {
                    at_eval: 3,
                    fault: Fault::ProbeLoss { node: 1 },
                },
            ],
            _ => return None,
        };
        Some(Self {
            name: name.to_string(),
            seed,
            events,
        })
    }

    /// The named plan `name` re-seeded for one session of a multiplexed
    /// run: same fault schedule, but the noise stream is derived from
    /// `(seed, session_idx)` so concurrent sessions see distinct —
    /// still reproducible — cluster weather. Session 0 with `seed` is
    /// NOT the same as `named(name, seed)`; callers who extract a single
    /// session for solo replay must go through this constructor too.
    pub fn for_session(name: &str, seed: u64, session_idx: usize) -> Option<Self> {
        let session_seed = seed ^ (session_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::named(name, session_seed)
    }

    /// The faults that hit evaluation `eval` (crash windows resolved).
    pub fn active_at(&self, eval: u64) -> impl Iterator<Item = &Fault> {
        self.events.iter().filter_map(move |e| match e.fault {
            Fault::NodeCrash { evals, .. } => {
                (e.at_eval <= eval && eval < e.at_eval.saturating_add(evals)).then_some(&e.fault)
            }
            _ => (e.at_eval == eval).then_some(&e.fault),
        })
    }

    /// Last evaluation index at which any scheduled fault is still active.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.fault {
                Fault::NodeCrash { evals, .. } => e.at_eval.saturating_add(evals.saturating_sub(1)),
                _ => e.at_eval,
            })
            .max()
            .unwrap_or(0)
    }

    /// Deterministic noise draw in `[-0.5, 0.5]` for evaluation `eval`
    /// (SplitMix64 over `(seed, eval)` — no RNG object, no shared state).
    fn noise_draw(&self, eval: u64) -> f64 {
        let mut x = self.seed ^ eval.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // CAST-SAFETY: 53-bit mantissa fraction of a u64 hash; precision
        // loss below 2^-53 is irrelevant for a noise draw.
        (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    /// Apply every fault scheduled for evaluation `eval` to a raw engine
    /// outcome, mutating duration, per-node load probes and failure
    /// status in place. Returns what was injected.
    pub fn apply(
        &self,
        eval: u64,
        duration_s: &mut f64,
        load_avg: &mut [[f64; 3]],
        failed: &mut bool,
        transient_failure: &mut bool,
    ) -> InjectionSummary {
        let mut summary = InjectionSummary::default();
        let n = load_avg.len().max(1) as f64;
        for fault in self.active_at(eval) {
            match *fault {
                Fault::NoiseSpike { magnitude } => {
                    let factor = 1.0 + magnitude.max(0.0) * self.noise_draw(eval);
                    *duration_s *= factor.max(0.05);
                    summary.noise_spikes += 1;
                }
                Fault::Straggler { node, slowdown } => {
                    let s = slowdown.max(1.0);
                    // The slow node holds its 1/n share of the critical
                    // path s× longer.
                    *duration_s *= 1.0 + (s - 1.0) / n;
                    if let Some(load) = load_avg.get_mut(node) {
                        for l in load.iter_mut() {
                            *l *= s;
                        }
                    }
                    summary.stragglers += 1;
                }
                Fault::NodeCrash { node, .. } => {
                    if let Some(load) = load_avg.get_mut(node) {
                        // Work redistributed over the surviving nodes;
                        // the dead node's probe is gone.
                        if n > 1.0 {
                            *duration_s *= n / (n - 1.0);
                        }
                        *load = [f64::NAN; 3];
                        summary.crashed_nodes += 1;
                        summary.probes_lost += 1;
                    }
                }
                Fault::ProbeLoss { node } => {
                    if let Some(load) = load_avg.get_mut(node) {
                        *load = [f64::NAN; 3];
                        summary.probes_lost += 1;
                    }
                }
                Fault::Transient { progress } => {
                    *duration_s *= progress.clamp(0.05, 0.95);
                    *failed = true;
                    *transient_failure = true;
                    summary.transient = true;
                }
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(n: usize) -> Vec<[f64; 3]> {
        vec![[1.0, 1.0, 1.0]; n]
    }

    #[test]
    fn named_plans_resolve_and_unknown_does_not() {
        for name in PLAN_NAMES {
            assert!(FaultPlan::named(name, 7).is_some(), "{name}");
        }
        assert!(FaultPlan::named("earthquake", 7).is_none());
    }

    #[test]
    fn mixed_plan_covers_acceptance_fault_classes() {
        let plan = FaultPlan::named("mixed", 7).expect("mixed exists");
        let labels: Vec<&str> = plan.events.iter().map(|e| e.fault.label()).collect();
        assert!(labels.contains(&"transient"));
        assert!(labels.contains(&"straggler"));
        assert!(labels.contains(&"probe_loss"));
    }

    #[test]
    fn crash_window_spans_multiple_evals() {
        let plan = FaultPlan::custom(
            0,
            vec![FaultEvent {
                at_eval: 3,
                fault: Fault::NodeCrash { node: 0, evals: 2 },
            }],
        );
        assert_eq!(plan.active_at(2).count(), 0);
        assert_eq!(plan.active_at(3).count(), 1);
        assert_eq!(plan.active_at(4).count(), 1);
        assert_eq!(plan.active_at(5).count(), 0);
        assert_eq!(plan.horizon(), 4);
    }

    #[test]
    fn transient_marks_failure_and_shortens_run() {
        let plan = FaultPlan::custom(
            1,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::Transient { progress: 0.5 },
            }],
        );
        let mut d = 100.0;
        let mut load = loads(3);
        let (mut failed, mut transient) = (false, false);
        let s = plan.apply(1, &mut d, &mut load, &mut failed, &mut transient);
        assert!(failed && transient && s.transient);
        assert_eq!(d, 50.0);
    }

    #[test]
    fn straggler_slows_job_and_spikes_node_load() {
        let plan = FaultPlan::custom(
            1,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::Straggler {
                    node: 1,
                    slowdown: 4.0,
                },
            }],
        );
        let mut d = 90.0;
        let mut load = loads(3);
        let (mut failed, mut transient) = (false, false);
        let s = plan.apply(1, &mut d, &mut load, &mut failed, &mut transient);
        assert_eq!(s.stragglers, 1);
        assert!(!failed);
        assert!((d - 180.0).abs() < 1e-9, "1 + 3/3 = 2x: {d}");
        assert_eq!(load[1], [4.0, 4.0, 4.0]);
        assert_eq!(load[0], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn probe_loss_yields_nan_probes() {
        let plan = FaultPlan::custom(
            1,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::ProbeLoss { node: 2 },
            }],
        );
        let mut d = 10.0;
        let mut load = loads(3);
        let (mut failed, mut transient) = (false, false);
        let s = plan.apply(1, &mut d, &mut load, &mut failed, &mut transient);
        assert_eq!(s.probes_lost, 1);
        assert!(load[2].iter().all(|v| v.is_nan()));
        assert_eq!(d, 10.0);
    }

    #[test]
    fn crash_redistributes_work_and_loses_probe() {
        let plan = FaultPlan::custom(
            1,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::NodeCrash { node: 0, evals: 1 },
            }],
        );
        let mut d = 60.0;
        let mut load = loads(3);
        let (mut failed, mut transient) = (false, false);
        let s = plan.apply(1, &mut d, &mut load, &mut failed, &mut transient);
        assert_eq!(s.crashed_nodes, 1);
        assert!((d - 90.0).abs() < 1e-9, "3/2 slowdown: {d}");
        assert!(load[0].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn out_of_range_node_is_ignored() {
        let plan = FaultPlan::custom(
            1,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::ProbeLoss { node: 99 },
            }],
        );
        let mut d = 10.0;
        let mut load = loads(3);
        let (mut failed, mut transient) = (false, false);
        let s = plan.apply(1, &mut d, &mut load, &mut failed, &mut transient);
        assert!(s.is_clean());
        assert!(load.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn noise_spike_is_deterministic_per_seed_and_eval() {
        let plan = FaultPlan::custom(
            42,
            vec![FaultEvent {
                at_eval: 1,
                fault: Fault::NoiseSpike { magnitude: 0.5 },
            }],
        );
        let run = |p: &FaultPlan| {
            let mut d = 100.0;
            let mut load = loads(2);
            let (mut f, mut t) = (false, false);
            p.apply(1, &mut d, &mut load, &mut f, &mut t);
            d
        };
        let d1 = run(&plan);
        let d2 = run(&plan);
        assert_eq!(d1, d2, "same plan, same draw");
        assert!(d1 != 100.0, "magnitude 0.5 must perturb");
        let mut other = plan.clone();
        other.seed = 43;
        assert!(run(&other) != d1, "different seed, different draw");
    }
}
