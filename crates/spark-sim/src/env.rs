//! The tuning environment: the interface every tuner (DeepCAT, CDBTune,
//! OtterTune, random search) talks to.
//!
//! An evaluation takes a configuration, "runs" the benchmark application on
//! the simulated cluster, and returns the measured execution time together
//! with the run metrics. Failed runs (OOM, infeasible resource requests)
//! still cost wall-clock time — a central point of the paper's
//! total-tuning-cost argument — so the environment charges a penalty time
//! derived from the default configuration's execution time.

use crate::cluster::Cluster;
use crate::engine::{simulate, FailureKind, SimOutcome};
use crate::faults::FaultPlan;
use crate::knobs::{Configuration, KnobSpace};
use crate::metrics::RunMetrics;
use crate::workloads::{JobSpec, Workload};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Result of evaluating one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalResult {
    /// Execution time charged for this evaluation (seconds). For failed
    /// runs this includes the retry penalty.
    pub exec_time_s: f64,
    /// Whether the run failed (OOM / infeasible / injected transient).
    pub failed: bool,
    /// Failure detail, if any.
    pub failure: Option<FailureKind>,
    /// Run metrics (idle metrics for runs that never started). Probe-loss
    /// faults leave NaN load-average entries here — consumers must impute
    /// before deriving agent state.
    pub metrics: RunMetrics,
    /// What the active [`FaultPlan`] injected into this evaluation
    /// (all-zero when no plan is installed or nothing was scheduled).
    pub injected: crate::faults::InjectionSummary,
}

/// Multiplier applied to the default execution time to price a failed run
/// (time wasted until the failure is diagnosed and the job restarted).
pub const FAILURE_PENALTY_FACTOR: f64 = 2.0;

/// What the environment executes per evaluation: one of the named
/// HiBench-style workloads, or a caller-provided custom job DAG (e.g. a
/// [`crate::synth::synthetic_job`]).
#[derive(Clone, Debug)]
enum JobSource {
    Named(Workload),
    Custom { label: String, job: JobSpec },
}

/// A (cluster, workload) tuning target.
#[derive(Clone, Debug)]
pub struct SparkEnv {
    space: KnobSpace,
    cluster: Cluster,
    source: JobSource,
    /// Base seed; each evaluation perturbs it so repeated evaluations see
    /// fresh run-to-run noise while the whole experiment stays reproducible.
    seed: u64,
    evals: u64,
    infeasible_evals: u64,
    default_time: f64,
    /// Optional deterministic fault schedule applied to evaluations.
    faults: Option<FaultPlan>,
}

impl SparkEnv {
    /// Create an environment and measure the default configuration once
    /// (averaged over three runs, like a benchmarking harness would).
    pub fn new(cluster: Cluster, workload: Workload, seed: u64) -> Self {
        Self::from_source(cluster, JobSource::Named(workload), seed)
    }

    /// An environment running a caller-provided job DAG (synthetic or
    /// hand-built) instead of a named workload.
    pub fn with_job(cluster: Cluster, label: &str, job: JobSpec, seed: u64) -> Self {
        // PANIC-SAFETY: constructor contract — an invalid caller-supplied
        // DAG must fail fast at setup, not mid-tuning.
        job.validate().expect("custom job must be a valid DAG");
        Self::from_source(
            cluster,
            JobSource::Custom {
                label: label.to_string(),
                job,
            },
            seed,
        )
    }

    fn from_source(cluster: Cluster, source: JobSource, seed: u64) -> Self {
        let space = KnobSpace::pipeline();
        let mut env = SparkEnv {
            space,
            cluster,
            source,
            seed,
            evals: 0,
            infeasible_evals: 0,
            default_time: 0.0,
            faults: None,
        };
        let dflt = env.space.default_config();
        let mut total = 0.0;
        for i in 0..3 {
            let out = env.raw_run(&dflt, 0xD0_0D + i);
            total += out.duration_s;
        }
        env.default_time = total / 3.0;
        env
    }

    pub fn space(&self) -> &KnobSpace {
        &self.space
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The named workload. Panics for custom-job environments; use
    /// [`label`](Self::label) for display purposes.
    pub fn workload(&self) -> Workload {
        match &self.source {
            JobSource::Named(w) => *w,
            JobSource::Custom { label, .. } => {
                // PANIC-SAFETY: documented API contract (see doc comment);
                // custom-job callers must use `label()` instead.
                panic!("custom-job environment ({label}) has no named workload")
            }
        }
    }

    /// Human-readable name of the tuning target.
    pub fn label(&self) -> String {
        match &self.source {
            JobSource::Named(w) => w.to_string(),
            JobSource::Custom { label, .. } => label.clone(),
        }
    }

    /// Execution time of the framework-default configuration (seconds).
    pub fn default_exec_time(&self) -> f64 {
        self.default_time
    }

    /// Number of configuration evaluations performed so far.
    pub fn eval_count(&self) -> u64 {
        self.evals
    }

    /// Restore the evaluation counter when resuming from a checkpoint, so
    /// per-evaluation noise salts and fault schedules replay identically.
    pub fn restore_eval_count(&mut self, evals: u64) {
        self.evals = evals;
    }

    /// How many evaluations violated the [`crate::constraints`] model —
    /// the quantity the guardrail layer drives to zero. Guarded sessions
    /// assert on this; unguarded ones use it to measure exposure.
    pub fn infeasible_eval_count(&self) -> u64 {
        self.infeasible_evals
    }

    /// Install a deterministic fault schedule (replacing any previous
    /// one). Faults key off the evaluation counter, so install the plan
    /// before the first [`evaluate`](Self::evaluate) call.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The action dimension (number of knobs).
    pub fn action_dim(&self) -> usize {
        self.space.len()
    }

    /// The state dimension (3 load averages × nodes).
    pub fn state_dim(&self) -> usize {
        3 * self.cluster.num_nodes()
    }

    /// State vector for "cluster idle" (episode reset).
    pub fn idle_state(&self) -> Vec<f64> {
        RunMetrics::idle(self.cluster.num_nodes()).state_vector(self.cluster.node().cores)
    }

    fn raw_run(&self, config: &Configuration, salt: u64) -> SimOutcome {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        salt.hash(&mut h);
        match &self.source {
            JobSource::Named(w) => {
                w.hash(&mut h);
                simulate(&self.cluster, config, &w.job_spec(), h.finish())
            }
            JobSource::Custom { label, job } => {
                label.hash(&mut h);
                simulate(&self.cluster, config, job, h.finish())
            }
        }
    }

    /// Evaluate a concrete configuration. This is the *costly* operation the
    /// paper's Twin-Q Optimizer tries to avoid wasting on sub-optimal
    /// actions.
    pub fn evaluate(&mut self, config: &Configuration) -> EvalResult {
        self.evals += 1;
        let violations = crate::constraints::validate(config);
        if !violations.is_empty() {
            self.infeasible_evals += 1;
            let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
            telemetry::event!(
                "guardrail.infeasible_eval",
                eval = self.evals,
                rules = rules.join(","),
                count = violations.len() as u64,
            );
        }
        let mut out = self.raw_run(config, self.evals);
        let mut failed = out.failed.is_some();
        let mut injected = crate::faults::InjectionSummary::default();
        if let Some(plan) = &self.faults {
            let mut transient = false;
            injected = plan.apply(
                self.evals,
                &mut out.duration_s,
                &mut out.metrics.load_avg,
                &mut failed,
                &mut transient,
            );
            out.metrics.duration_s = out.duration_s;
            if transient {
                out.failed = Some(FailureKind::TransientEnv);
            }
            if !injected.is_clean() {
                telemetry::event!(
                    "fault.injected",
                    eval = self.evals,
                    plan = plan.name.clone(),
                    transient = injected.transient,
                    stragglers = injected.stragglers as u64,
                    probes_lost = injected.probes_lost as u64,
                    noise_spikes = injected.noise_spikes as u64,
                    crashed_nodes = injected.crashed_nodes as u64,
                );
            }
        }
        let exec_time_s = if failed {
            // Diagnose-and-retry cost: the partial run plus a penalty
            // proportional to the default execution time. Applied exactly
            // once per failed evaluation, whatever the failure kind.
            out.duration_s + FAILURE_PENALTY_FACTOR * self.default_time
        } else {
            out.duration_s
        };
        EvalResult {
            exec_time_s,
            failed,
            failure: out.failed,
            metrics: out.metrics,
            injected,
        }
    }

    /// Evaluate a normalized action vector in `[0,1]^32`.
    pub fn evaluate_action(&mut self, action: &[f64]) -> EvalResult {
        let cfg = self.space.denormalize(action);
        self.evaluate(&cfg)
    }

    /// State vector after an evaluation, as the agent observes it.
    pub fn observe(&self, result: &EvalResult) -> Vec<f64> {
        result.metrics.state_vector(self.cluster.node().cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{InputSize, WorkloadKind};

    fn env() -> SparkEnv {
        SparkEnv::new(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            42,
        )
    }

    #[test]
    fn default_time_is_measured_and_stable() {
        let e1 = env();
        let e2 = env();
        assert!(e1.default_exec_time() > 10.0);
        assert_eq!(e1.default_exec_time(), e2.default_exec_time());
    }

    #[test]
    fn dimensions_match_paper() {
        let e = env();
        assert_eq!(e.action_dim(), 32);
        assert_eq!(e.state_dim(), 9);
        assert_eq!(e.idle_state().len(), 9);
    }

    #[test]
    fn evaluation_counts_and_noise() {
        let mut e = env();
        let cfg = e.space().default_config();
        let r1 = e.evaluate(&cfg);
        let r2 = e.evaluate(&cfg);
        assert_eq!(e.eval_count(), 2);
        // Same config, different eval → run-to-run noise, but same ballpark.
        let rel = (r1.exec_time_s - r2.exec_time_s).abs() / r1.exec_time_s;
        assert!(rel < 0.4, "rel diff {rel}");
    }

    #[test]
    fn failed_runs_are_penalized() {
        let mut e = env();
        let mut action = vec![0.5; 32];
        // Giant executors + tiny NodeManager memory → negotiation failure.
        action[crate::knobs::idx::EXECUTOR_MEMORY_MB] = 1.0;
        action[crate::knobs::idx::NM_MEMORY_MB] = 0.0;
        action[crate::knobs::idx::SCHED_MAX_ALLOC_MB] = 1.0;
        let r = e.evaluate_action(&action);
        assert!(r.failed);
        assert!(r.exec_time_s > FAILURE_PENALTY_FACTOR * e.default_exec_time());
    }

    #[test]
    fn observe_returns_state_dim() {
        let mut e = env();
        let r = e.evaluate(&e.space().default_config().clone());
        assert_eq!(e.observe(&r).len(), e.state_dim());
    }

    /// A failing action (giant executors vs tiny NodeManager memory →
    /// negotiation failure with a fixed 20 s submission timeout).
    fn failing_action() -> Vec<f64> {
        let mut action = vec![0.5; 32];
        action[crate::knobs::idx::EXECUTOR_MEMORY_MB] = 1.0;
        action[crate::knobs::idx::NM_MEMORY_MB] = 0.0;
        action[crate::knobs::idx::SCHED_MAX_ALLOC_MB] = 1.0;
        action
    }

    #[test]
    fn infeasible_evaluations_are_counted() {
        let mut e = env();
        e.evaluate(&e.space().default_config().clone());
        assert_eq!(e.infeasible_eval_count(), 0, "default config is feasible");
        e.evaluate_action(&failing_action());
        assert_eq!(e.infeasible_eval_count(), 1);
        assert_eq!(e.eval_count(), 2);
    }

    #[test]
    fn failure_penalty_is_applied_exactly_once() {
        let mut e = env();
        let r = e.evaluate_action(&failing_action());
        assert!(r.failed);
        // Negotiation failures abort after a fixed 20 s submission
        // timeout, so the charge decomposes exactly: that partial time +
        // one penalty term. Any double application would add another
        // 2×default (hundreds of seconds) and fail the equality.
        let expected = 20.0 + FAILURE_PENALTY_FACTOR * e.default_exec_time();
        assert!(
            (r.exec_time_s - expected).abs() < 1e-9,
            "charged {} vs 20.0 + penalty {}",
            r.exec_time_s,
            FAILURE_PENALTY_FACTOR * e.default_exec_time()
        );
    }

    #[test]
    fn never_started_run_reports_idle_metrics() {
        let mut e = env();
        let r = e.evaluate_action(&failing_action());
        assert!(r.failed, "negotiation must fail");
        // The job never launched a task: metrics are the idle record
        // (modulo the charged duration bookkeeping).
        let idle = RunMetrics::idle(e.cluster().num_nodes());
        assert_eq!(r.metrics.load_avg, idle.load_avg);
        assert_eq!(r.metrics.tasks_launched, 0);
        assert_eq!(r.metrics.cpu_util, 0.0);
        assert_eq!(r.metrics.hdfs_read_mb, 0.0);
        assert_eq!(r.metrics.container_kills, 0);
    }

    #[test]
    fn injected_transient_fails_with_penalty_once() {
        let mut e = env();
        e.set_fault_plan(FaultPlan::custom(
            3,
            vec![crate::faults::FaultEvent {
                at_eval: 1,
                fault: crate::faults::Fault::Transient { progress: 0.5 },
            }],
        ));
        let cfg = e.space().default_config();
        let r1 = e.evaluate(&cfg);
        assert!(r1.failed);
        assert_eq!(r1.failure, Some(FailureKind::TransientEnv));
        assert!(r1.injected.transient);
        let expected = r1.metrics.duration_s + FAILURE_PENALTY_FACTOR * e.default_exec_time();
        assert!((r1.exec_time_s - expected).abs() < 1e-9);
        // The next evaluation (a "retry") is off the schedule → clean.
        let r2 = e.evaluate(&cfg);
        assert!(!r2.failed);
        assert!(r2.injected.is_clean());
    }

    #[test]
    fn probe_loss_propagates_nan_into_observed_state() {
        let mut e = env();
        e.set_fault_plan(FaultPlan::custom(
            3,
            vec![crate::faults::FaultEvent {
                at_eval: 1,
                fault: crate::faults::Fault::ProbeLoss { node: 1 },
            }],
        ));
        let r = e.evaluate(&e.space().default_config().clone());
        assert!(!r.failed);
        let state = e.observe(&r);
        assert!(state[3..6].iter().all(|v| v.is_nan()), "{state:?}");
        assert!(state[0..3].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fault_plan_keeps_same_seed_runs_identical() {
        let mk = || {
            let mut e = env();
            e.set_fault_plan(FaultPlan::named("mixed", 9).expect("mixed exists"));
            let cfg = e.space().default_config();
            (0..7)
                .map(|_| e.evaluate(&cfg).exec_time_s)
                .collect::<Vec<f64>>()
        };
        assert_eq!(mk(), mk());
    }
}
