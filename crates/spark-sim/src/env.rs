//! The tuning environment: the interface every tuner (DeepCAT, CDBTune,
//! OtterTune, random search) talks to.
//!
//! An evaluation takes a configuration, "runs" the benchmark application on
//! the simulated cluster, and returns the measured execution time together
//! with the run metrics. Failed runs (OOM, infeasible resource requests)
//! still cost wall-clock time — a central point of the paper's
//! total-tuning-cost argument — so the environment charges a penalty time
//! derived from the default configuration's execution time.

use crate::cluster::Cluster;
use crate::engine::{simulate, FailureKind, SimOutcome};
use crate::knobs::{Configuration, KnobSpace};
use crate::metrics::RunMetrics;
use crate::workloads::{JobSpec, Workload};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Result of evaluating one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalResult {
    /// Execution time charged for this evaluation (seconds). For failed
    /// runs this includes the retry penalty.
    pub exec_time_s: f64,
    /// Whether the run failed (OOM / infeasible).
    pub failed: bool,
    /// Failure detail, if any.
    pub failure: Option<FailureKind>,
    /// Run metrics (idle metrics for runs that never started).
    pub metrics: RunMetrics,
}

/// Multiplier applied to the default execution time to price a failed run
/// (time wasted until the failure is diagnosed and the job restarted).
pub const FAILURE_PENALTY_FACTOR: f64 = 2.0;

/// What the environment executes per evaluation: one of the named
/// HiBench-style workloads, or a caller-provided custom job DAG (e.g. a
/// [`crate::synth::synthetic_job`]).
#[derive(Clone, Debug)]
enum JobSource {
    Named(Workload),
    Custom { label: String, job: JobSpec },
}

/// A (cluster, workload) tuning target.
#[derive(Clone, Debug)]
pub struct SparkEnv {
    space: KnobSpace,
    cluster: Cluster,
    source: JobSource,
    /// Base seed; each evaluation perturbs it so repeated evaluations see
    /// fresh run-to-run noise while the whole experiment stays reproducible.
    seed: u64,
    evals: u64,
    default_time: f64,
}

impl SparkEnv {
    /// Create an environment and measure the default configuration once
    /// (averaged over three runs, like a benchmarking harness would).
    pub fn new(cluster: Cluster, workload: Workload, seed: u64) -> Self {
        Self::from_source(cluster, JobSource::Named(workload), seed)
    }

    /// An environment running a caller-provided job DAG (synthetic or
    /// hand-built) instead of a named workload.
    pub fn with_job(cluster: Cluster, label: &str, job: JobSpec, seed: u64) -> Self {
        // PANIC-SAFETY: constructor contract — an invalid caller-supplied
        // DAG must fail fast at setup, not mid-tuning.
        job.validate().expect("custom job must be a valid DAG");
        Self::from_source(
            cluster,
            JobSource::Custom {
                label: label.to_string(),
                job,
            },
            seed,
        )
    }

    fn from_source(cluster: Cluster, source: JobSource, seed: u64) -> Self {
        let space = KnobSpace::pipeline();
        let mut env = SparkEnv {
            space,
            cluster,
            source,
            seed,
            evals: 0,
            default_time: 0.0,
        };
        let dflt = env.space.default_config();
        let mut total = 0.0;
        for i in 0..3 {
            let out = env.raw_run(&dflt, 0xD0_0D + i);
            total += out.duration_s;
        }
        env.default_time = total / 3.0;
        env
    }

    pub fn space(&self) -> &KnobSpace {
        &self.space
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The named workload. Panics for custom-job environments; use
    /// [`label`](Self::label) for display purposes.
    pub fn workload(&self) -> Workload {
        match &self.source {
            JobSource::Named(w) => *w,
            JobSource::Custom { label, .. } => {
                // PANIC-SAFETY: documented API contract (see doc comment);
                // custom-job callers must use `label()` instead.
                panic!("custom-job environment ({label}) has no named workload")
            }
        }
    }

    /// Human-readable name of the tuning target.
    pub fn label(&self) -> String {
        match &self.source {
            JobSource::Named(w) => w.to_string(),
            JobSource::Custom { label, .. } => label.clone(),
        }
    }

    /// Execution time of the framework-default configuration (seconds).
    pub fn default_exec_time(&self) -> f64 {
        self.default_time
    }

    /// Number of configuration evaluations performed so far.
    pub fn eval_count(&self) -> u64 {
        self.evals
    }

    /// The action dimension (number of knobs).
    pub fn action_dim(&self) -> usize {
        self.space.len()
    }

    /// The state dimension (3 load averages × nodes).
    pub fn state_dim(&self) -> usize {
        3 * self.cluster.num_nodes()
    }

    /// State vector for "cluster idle" (episode reset).
    pub fn idle_state(&self) -> Vec<f64> {
        RunMetrics::idle(self.cluster.num_nodes()).state_vector(self.cluster.node().cores)
    }

    fn raw_run(&self, config: &Configuration, salt: u64) -> SimOutcome {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        salt.hash(&mut h);
        match &self.source {
            JobSource::Named(w) => {
                w.hash(&mut h);
                simulate(&self.cluster, config, &w.job_spec(), h.finish())
            }
            JobSource::Custom { label, job } => {
                label.hash(&mut h);
                simulate(&self.cluster, config, job, h.finish())
            }
        }
    }

    /// Evaluate a concrete configuration. This is the *costly* operation the
    /// paper's Twin-Q Optimizer tries to avoid wasting on sub-optimal
    /// actions.
    pub fn evaluate(&mut self, config: &Configuration) -> EvalResult {
        self.evals += 1;
        let out = self.raw_run(config, self.evals);
        let failed = out.failed.is_some();
        let exec_time_s = if failed {
            // Diagnose-and-retry cost: the partial run plus a penalty
            // proportional to the default execution time.
            out.duration_s + FAILURE_PENALTY_FACTOR * self.default_time
        } else {
            out.duration_s
        };
        EvalResult {
            exec_time_s,
            failed,
            failure: out.failed,
            metrics: out.metrics,
        }
    }

    /// Evaluate a normalized action vector in `[0,1]^32`.
    pub fn evaluate_action(&mut self, action: &[f64]) -> EvalResult {
        let cfg = self.space.denormalize(action);
        self.evaluate(&cfg)
    }

    /// State vector after an evaluation, as the agent observes it.
    pub fn observe(&self, result: &EvalResult) -> Vec<f64> {
        result.metrics.state_vector(self.cluster.node().cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{InputSize, WorkloadKind};

    fn env() -> SparkEnv {
        SparkEnv::new(
            Cluster::cluster_a(),
            Workload::new(WorkloadKind::TeraSort, InputSize::D1),
            42,
        )
    }

    #[test]
    fn default_time_is_measured_and_stable() {
        let e1 = env();
        let e2 = env();
        assert!(e1.default_exec_time() > 10.0);
        assert_eq!(e1.default_exec_time(), e2.default_exec_time());
    }

    #[test]
    fn dimensions_match_paper() {
        let e = env();
        assert_eq!(e.action_dim(), 32);
        assert_eq!(e.state_dim(), 9);
        assert_eq!(e.idle_state().len(), 9);
    }

    #[test]
    fn evaluation_counts_and_noise() {
        let mut e = env();
        let cfg = e.space().default_config();
        let r1 = e.evaluate(&cfg);
        let r2 = e.evaluate(&cfg);
        assert_eq!(e.eval_count(), 2);
        // Same config, different eval → run-to-run noise, but same ballpark.
        let rel = (r1.exec_time_s - r2.exec_time_s).abs() / r1.exec_time_s;
        assert!(rel < 0.4, "rel diff {rel}");
    }

    #[test]
    fn failed_runs_are_penalized() {
        let mut e = env();
        let mut action = vec![0.5; 32];
        // Giant executors + tiny NodeManager memory → negotiation failure.
        action[crate::knobs::idx::EXECUTOR_MEMORY_MB] = 1.0;
        action[crate::knobs::idx::NM_MEMORY_MB] = 0.0;
        action[crate::knobs::idx::SCHED_MAX_ALLOC_MB] = 1.0;
        let r = e.evaluate_action(&action);
        assert!(r.failed);
        assert!(r.exec_time_s > FAILURE_PENALTY_FACTOR * e.default_exec_time());
    }

    #[test]
    fn observe_returns_state_dim() {
        let mut e = env();
        let r = e.evaluate(&e.space().default_config().clone());
        assert_eq!(e.observe(&r).len(), e.state_dim());
    }
}
