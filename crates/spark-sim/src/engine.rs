//! Discrete-event execution engine: schedules each stage's tasks over the
//! executor slots granted by YARN, modelling disk/network contention,
//! shuffle compression, spills, GC pressure, data locality, speculative
//! execution and container kills.
//!
//! The engine is deterministic for a given `(config, job, seed)` triple —
//! all stochastic effects (stragglers, kill draws) come from a seeded
//! `StdRng`.

use crate::cluster::Cluster;
use crate::effective::{Effective, Serializer};
use crate::hdfs::{Hdfs, HdfsFile};
use crate::knobs::Configuration;
use crate::metrics::RunMetrics;
use crate::workloads::{DataSink, DataSource, JobSpec, StageSpec, TaskSizing};
use crate::yarn::{negotiate, ExecutorPlan, NegotiationError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Spark reserves this much heap before the unified memory pool is carved
/// out (`RESERVED_SYSTEM_MEMORY_BYTES` in Spark 2.x).
const RESERVED_HEAP_MB: f64 = 300.0;
/// Fixed per-task launch overhead (serialization + scheduling), seconds.
const TASK_OVERHEAD_S: f64 = 0.08;
/// Seconds to re-launch a killed container.
const CONTAINER_RELAUNCH_S: f64 = 6.0;

/// Why a simulated job failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// YARN could not grant any executor.
    Negotiation(NegotiationError),
    /// Executors repeatedly exceeded their container limits (OOM).
    ExecutorOom,
    /// The driver ran out of memory.
    DriverOom,
    /// A transient environment fault (lost heartbeat, AM restart) killed
    /// the run — injected by a [`crate::faults::FaultPlan`], never
    /// produced by the engine itself. Unlike the configuration-caused
    /// kinds above, retrying the same configuration may succeed.
    TransientEnv,
}

impl FailureKind {
    /// True for failures an immediate same-configuration retry can fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, FailureKind::TransientEnv)
    }
}

/// One scheduled task occurrence (produced when tracing is enabled).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskTrace {
    /// Stage name the task belongs to.
    pub stage: String,
    /// Task index within the stage.
    pub task: usize,
    /// Node the task ran on.
    pub node: usize,
    /// Slot index within the stage's slot set.
    pub slot: usize,
    /// Start time relative to the stage start (seconds).
    pub start_s: f64,
    /// Task duration (seconds).
    pub duration_s: f64,
    /// Whether the task read node-local data.
    pub local: bool,
}

/// Result of one simulated job execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Wall-clock seconds until completion — or until failure.
    pub duration_s: f64,
    /// `Some` if the job did not complete.
    pub failed: Option<FailureKind>,
    /// Per-stage durations `(name, seconds)` for completed stages.
    pub stage_times: Vec<(String, f64)>,
    /// Aggregated run metrics (DRL state + OtterTune metrics).
    pub metrics: RunMetrics,
    /// The executor layout the job ran with (absent on negotiation failure).
    pub plan: Option<ExecutorPlan>,
    /// Per-task schedule records; populated only by [`simulate_traced`].
    pub task_traces: Vec<TaskTrace>,
}

/// Simulate `job` under `config` on `cluster`. `seed` controls stragglers
/// and kill draws only; the mean behaviour is fully determined by the
/// configuration.
pub fn simulate(cluster: &Cluster, config: &Configuration, job: &JobSpec, seed: u64) -> SimOutcome {
    simulate_impl(cluster, config, job, seed, false)
}

/// As [`simulate`], but additionally records a [`TaskTrace`] for every
/// scheduled task — the raw material for schedule visualizations and
/// scheduler-invariant tests.
pub fn simulate_traced(
    cluster: &Cluster,
    config: &Configuration,
    job: &JobSpec,
    seed: u64,
) -> SimOutcome {
    simulate_impl(cluster, config, job, seed, true)
}

fn simulate_impl(
    cluster: &Cluster,
    config: &Configuration,
    job: &JobSpec,
    seed: u64,
    trace: bool,
) -> SimOutcome {
    let eff = Effective::decode(config);
    let plan = match negotiate(config, cluster) {
        Ok(p) => p,
        Err(e) => {
            return SimOutcome {
                duration_s: 20.0, // submission + AM failure timeout
                failed: Some(FailureKind::Negotiation(e)),
                stage_times: Vec::new(),
                metrics: RunMetrics::idle(cluster.num_nodes()),
                plan: None,
                task_traces: Vec::new(),
            };
        }
    };
    let hdfs = Hdfs::new(cluster.num_nodes(), eff.nn_handlers, eff.dn_handlers);
    Engine {
        cluster,
        eff,
        plan,
        job,
        hdfs,
        rng: StdRng::seed_from_u64(seed),
        trace,
        traces: Vec::new(),
        current_stage: String::new(),
    }
    .run()
}

struct Engine<'a> {
    cluster: &'a Cluster,
    eff: Effective,
    plan: ExecutorPlan,
    job: &'a JobSpec,
    hdfs: Hdfs,
    rng: StdRng,
    trace: bool,
    traces: Vec<TaskTrace>,
    current_stage: String,
}

/// Totals accumulated while running stages.
#[derive(Default)]
struct Accum {
    busy_core_s: Vec<f64>,
    io_core_s: Vec<f64>,
    hdfs_read_mb: f64,
    hdfs_write_mb: f64,
    shuffle_mb: f64,
    spill_mb: f64,
    gc_cpu_s: f64,
    cpu_s: f64,
    cache_reads_mb: f64,
    cache_hits_mb: f64,
    kills: u32,
    tasks: u32,
    task_s: f64,
}

impl<'a> Engine<'a> {
    fn run(mut self) -> SimOutcome {
        let _span = telemetry::span!("sim.engine_step");
        let mut acc = Accum {
            busy_core_s: vec![0.0; self.cluster.num_nodes()],
            io_core_s: vec![0.0; self.cluster.num_nodes()],
            ..Default::default()
        };
        let mut stage_times = Vec::with_capacity(self.job.stages.len());
        let mut elapsed = 0.0;
        let mem = self.memory_model();
        let mut failed = None;

        // Driver-side overhead: job setup, broadcasts, result handling.
        match self.driver_overhead() {
            Err(kind) => return self.finish(15.0, Some(kind), stage_times, acc),
            Ok(overhead) => elapsed += overhead,
        }

        // Stages execute in topological levels; stages within a level are
        // independent and run concurrently, sharing the executor slots
        // (Spark's FIFO in-job scheduling).
        let job = self.job;
        // PANIC-SAFETY: every named workload DAG is validated in tests and
        // custom jobs are validated at SparkEnv construction.
        let levels = job.levels().expect("workload DAGs are validated acyclic");
        'levels: for level in levels {
            let share = 1.0 / level.len() as f64;
            let mut level_time: f64 = 0.0;
            for &si in &level {
                let stage = &job.stages[si];
                self.current_stage = stage.name.to_string();
                match self.run_stage(stage, &mem, &mut acc, share) {
                    Ok(t) => {
                        telemetry::observe_duration("sim.stage", t);
                        level_time = level_time.max(t);
                        stage_times.push((stage.name.to_string(), t));
                    }
                    Err((partial, kind)) => {
                        elapsed += partial;
                        failed = Some(kind);
                        break 'levels;
                    }
                }
            }
            elapsed += level_time;
        }
        self.finish(elapsed, failed, stage_times, acc)
    }

    /// Unified-memory bookkeeping shared by all stages.
    fn memory_model(&self) -> MemoryModel {
        let heap = self.plan.executor_heap_mb as f64;
        let pool = ((heap - RESERVED_HEAP_MB).max(64.0)) * self.eff.memory_fraction;
        let storage_guaranteed = pool * self.eff.storage_fraction;
        let execution_guaranteed = pool - storage_guaranteed;
        let cache_need_total = self.job.peak_cache_mb * self.eff.cache_footprint_multiplier();
        let execs = self.plan.total_executors as f64;
        let cache_need_per_exec = cache_need_total / execs;
        // Storage may borrow idle execution memory, but sort-heavy stages
        // claw it back; credit half the execution pool as borrowable.
        let storage_cap_per_exec = storage_guaranteed + 0.5 * execution_guaranteed;
        let cached_per_exec = cache_need_per_exec.min(storage_cap_per_exec);
        let cache_hit = if cache_need_total > 0.0 {
            (cached_per_exec / cache_need_per_exec).clamp(0.0, 1.0)
        } else {
            1.0
        };
        MemoryModel {
            heap,
            pool,
            execution_guaranteed,
            cached_per_exec,
            cache_hit,
            container: self.plan.container_memory_mb as f64,
        }
    }

    fn driver_overhead(&mut self) -> Result<f64, FailureKind> {
        let total_tasks: f64 = self
            .job
            .stages
            .iter()
            .map(|s| self.task_count(s) as f64)
            .sum();
        let dmem = self.eff.driver_memory_mb as f64;
        let need = 300.0 + total_tasks * 0.08 + self.job.driver_work * 120.0;
        if dmem < 0.55 * need {
            return Err(FailureKind::DriverOom);
        }
        let gc = if dmem < need { 1.8 } else { 1.0 };
        let cores = self.eff.driver_cores as f64;
        let bb = self.eff.broadcast_block_mb as f64;
        // Broadcast: too-small blocks add round trips, too-large blocks
        // serialize poorly across the torrent.
        let bcast = 1.0 + 1.5 / bb + bb / 48.0;
        let base = self.job.driver_work * (0.6 + 1.2 / cores.sqrt()) * bcast;
        Ok(gc * (base + total_tasks * 0.002))
    }

    fn task_count(&self, stage: &StageSpec) -> u32 {
        match stage.sizing {
            TaskSizing::ByInputSplits => {
                let mb = stage.read.mb();
                ((mb / self.eff.dfs_block_mb as f64).ceil() as u32).max(1)
            }
            TaskSizing::ByParallelism => self.eff.default_parallelism.max(1),
            TaskSizing::Fixed(n) => n.max(1),
        }
    }

    /// Buffer-size efficiency curve: tiny buffers waste syscalls, saturating
    /// around a few hundred KB.
    fn buffer_eff(kb: u64) -> f64 {
        let kb = kb.max(1) as f64;
        (0.58 + 0.42 * ((kb / 4.0).ln() / (1024.0f64 / 4.0).ln())).clamp(0.58, 1.0)
    }

    /// Simulate one stage. Returns `Ok(duration)` or `Err((partial, kind))`.
    fn run_stage(
        &mut self,
        stage: &StageSpec,
        mem: &MemoryModel,
        acc: &mut Accum,
        slot_share: f64,
    ) -> Result<f64, (f64, FailureKind)> {
        // Input files are laid out by the HDFS block-placement model; the
        // resulting blocks are the stage's input splits and carry the
        // replica locations the scheduler uses for locality decisions.
        let input_file: Option<HdfsFile> = match stage.read {
            DataSource::Hdfs { mb } => {
                let seed = self.rng.gen::<u64>();
                Some(self.hdfs.place_file(
                    mb,
                    self.eff.dfs_block_mb,
                    self.eff.dfs_replication,
                    seed,
                ))
            }
            _ => None,
        };
        let ntasks = match (&input_file, stage.sizing) {
            (Some(f), TaskSizing::ByInputSplits) => f.num_blocks(),
            _ => self.task_count(stage) as usize,
        };
        let task_input_mb = stage.read.mb() / ntasks as f64;
        let slots_total = self.plan.total_slots.max(1);

        // ---- per-task memory & spill ----
        let java_mem_factor = match self.eff.serializer {
            Serializer::Java => 1.15,
            Serializer::Kryo => 1.0,
        };
        let exec_demand = stage.exec_mem_per_input_mb * task_input_mb * java_mem_factor
            + self.eff.reducer_max_in_flight_mb as f64
                * 0.15
                * matches!(stage.read, DataSource::Shuffle { .. }) as u8 as f64;
        let exec_avail_per_exec = mem.execution_guaranteed
            + (mem.pool - mem.execution_guaranteed - mem.cached_per_exec).max(0.0);
        let per_task_exec_mem = exec_avail_per_exec / self.plan.slots_per_executor.max(1) as f64;
        let spill_per_task = (exec_demand - per_task_exec_mem).max(0.0).min(exec_demand);

        // ---- GC pressure ----
        let occupancy = ((mem.cached_per_exec
            + self.plan.slots_per_executor as f64 * exec_demand.min(per_task_exec_mem)
            + RESERVED_HEAP_MB)
            / mem.heap)
            .clamp(0.0, 1.3);
        let gc_factor = 1.0 + 2.2 * (occupancy - 0.55).max(0.0).powi(2);

        // ---- container kill / OOM model ----
        let native = stage.native_spike_mb * self.plan.slots_per_executor as f64;
        let phys = mem.heap * occupancy.min(1.0) + native;
        let pmem_pressure = phys / mem.container;
        let vmem_pressure = (phys * 2.1) / (mem.container * self.eff.vmem_pmem_ratio);
        let mut kill_p: f64 = 0.0;
        if self.eff.pmem_check {
            kill_p += ((pmem_pressure - 1.02) * 3.0).clamp(0.0, 0.9);
        }
        kill_p += ((vmem_pressure - 1.0) * 2.5).clamp(0.0, 0.9);
        kill_p = kill_p.min(0.95);
        // Severe, persistent pressure on a cache-heavy stage ⇒ the job dies
        // (the paper's KMeans OOM scenario).
        let cache_heavy = matches!(stage.read, DataSource::Cached { .. });
        if kill_p > 0.55 && (cache_heavy || pmem_pressure > 1.3) {
            let draw: f64 = self.rng.gen();
            if draw < (kill_p - 0.35) {
                // Ran part of the stage before dying, plus retries by YARN.
                let partial = 0.5 * self.estimate_stage_floor(stage, ntasks, task_input_mb);
                return Err((
                    partial + 2.0 * CONTAINER_RELAUNCH_S,
                    FailureKind::ExecutorOom,
                ));
            }
        }

        // ---- shuffle compression ----
        let (read_comp_ratio, read_comp_cpu) =
            if self.eff.shuffle_compress && matches!(stage.read, DataSource::Shuffle { .. }) {
                (self.eff.codec.ratio(), self.eff.codec.cpu_per_mb())
            } else {
                (1.0, 0.0)
            };
        let (write_comp_ratio, write_comp_cpu) =
            if self.eff.shuffle_compress && matches!(stage.write, DataSink::Shuffle { .. }) {
                (self.eff.codec.ratio(), self.eff.codec.cpu_per_mb())
            } else {
                (1.0, 0.0)
            };
        let in_flight_eff =
            (0.45 + 0.55 * (self.eff.reducer_max_in_flight_mb as f64 / 48.0).min(1.0)).min(1.0);

        // ---- per-task, per-node time components ----
        // Tasks run at the speed of the node they are scheduled on, so the
        // components are evaluated per node (heterogeneous clusters differ;
        // homogeneous ones produce identical rows).
        let slots_per_node = (slots_total as f64 / self.cluster.num_nodes() as f64).max(1.0);
        let io_streams = slots_per_node;
        let dn_eff = self.hdfs.datanode_stream_efficiency(io_streams);
        let out_mb_per_task = stage.write.mb() / ntasks as f64;

        let mut cpu_ref =
            stage.cpu_per_mb * self.eff.ser_cpu_multiplier(stage.ser_fraction) * task_input_mb;
        // Sort path: bypass merge-sort when the downstream partition count
        // is at or below the threshold (cheaper for modest fan-out, slightly
        // worse with huge fan-out because of per-partition files).
        if stage.sort_like {
            let parts = self.eff.default_parallelism;
            if parts <= self.eff.bypass_merge_threshold {
                let file_penalty = 1.0 + (parts as f64 / 3000.0);
                cpu_ref *= 0.85 * file_penalty;
            } else {
                cpu_ref *= 1.0 + 0.06 * (task_input_mb.max(1.0)).ln();
            }
        }
        cpu_ref += (read_comp_cpu * task_input_mb * read_comp_ratio)
            + (write_comp_cpu * stage.write.mb() / ntasks as f64);

        let per_node_base = |node: &crate::cluster::Node| -> (f64, f64) {
            let disk_stream = (node.disk_mbps / io_streams).max(1.0)
                * Self::buffer_eff(self.eff.io_buffer_kb)
                * dn_eff;
            let net_stream = (node.net_mbps / io_streams).max(0.5);
            let cpu_s = cpu_ref / node.cpu_speed;
            let cpu_total = cpu_s * gc_factor;

            // Read time.
            let (read_local_s, read_remote_s, cache_miss_extra) = match stage.read {
                DataSource::Hdfs { .. } => {
                    let local = task_input_mb / disk_stream;
                    let remote = task_input_mb / net_stream.min(disk_stream);
                    (local, remote * 1.1, 0.0)
                }
                DataSource::Shuffle { .. } => {
                    let t = (task_input_mb * read_comp_ratio) / net_stream / in_flight_eff;
                    (t, t, 0.0)
                }
                DataSource::Cached {
                    mb: _,
                    recompute_cpu_per_mb,
                } => {
                    let hit = mem.cache_hit;
                    let hit_read = task_input_mb * hit / 2000.0; // memory-speed scan
                    let miss_mb = task_input_mb * (1.0 - hit);
                    let miss =
                        miss_mb / disk_stream + recompute_cpu_per_mb * miss_mb / node.cpu_speed;
                    (hit_read, hit_read, miss)
                }
            };

            // Write time.
            let write_s = match stage.write {
                DataSink::Shuffle { .. } => {
                    let eff_buf = Self::buffer_eff(self.eff.shuffle_file_buffer_kb);
                    (out_mb_per_task * write_comp_ratio) / (disk_stream * eff_buf)
                }
                DataSink::Hdfs { .. } => {
                    // Replication pipeline: primary disk write overlaps with
                    // the network hops to the remaining replicas.
                    let (disk_mb, net_mb) = self
                        .hdfs
                        .write_amplification(out_mb_per_task, self.eff.dfs_replication);
                    let first = (disk_mb / self.eff.dfs_replication.max(1) as f64) / disk_stream;
                    let net = net_mb / net_stream;
                    first.max(net) + 0.2 * first.min(net)
                }
                DataSink::Driver => 0.0,
            };

            // Spill cost (write + later read back), optionally compressed.
            let spill_io = if spill_per_task > 0.0 {
                let (ratio, cpu) = if self.eff.shuffle_spill_compress {
                    (self.eff.codec.ratio(), self.eff.codec.cpu_per_mb())
                } else {
                    (1.0, 0.0)
                };
                (2.0 * spill_per_task * ratio) / disk_stream + cpu * spill_per_task / node.cpu_speed
            } else {
                0.0
            };

            let io_local = read_local_s + write_s + spill_io + cache_miss_extra;
            let io_remote = read_remote_s + write_s + spill_io + cache_miss_extra;
            // CPU and IO pipeline: the longer dominates, the shorter
            // partially hides behind it.
            (
                cpu_total.max(io_local) + 0.3 * cpu_total.min(io_local) + TASK_OVERHEAD_S,
                cpu_total.max(io_remote) + 0.3 * cpu_total.min(io_remote) + TASK_OVERHEAD_S,
            )
        };
        let node_base: Vec<(f64, f64)> = self.cluster.nodes.iter().map(per_node_base).collect();
        let (base_local, base_remote) = node_base[0];
        let cpu_total = cpu_ref / self.cluster.node().cpu_speed * gc_factor;
        let gc_extra = (cpu_ref / self.cluster.node().cpu_speed) * (gc_factor - 1.0);

        // ---- stage setup (driver + NameNode) ----
        // Each HDFS-touching task issues a handful of metadata RPCs (open /
        // getBlockLocations / addBlock / complete); they queue behind the
        // NameNode handler pool.
        let mut nn_ops = 0u64;
        if input_file.is_some() {
            nn_ops += 3 * ntasks as u64;
        }
        if matches!(stage.write, DataSink::Hdfs { .. }) {
            let out_blocks = (stage.write.mb() / self.eff.dfs_block_mb as f64)
                .ceil()
                .max(1.0) as u64;
            nn_ops += 2 * out_blocks + 2 * ntasks as u64;
        }
        let setup = 0.15
            + ntasks as f64 * 0.002 / (self.eff.driver_cores as f64).sqrt()
            + if nn_ops > 0 {
                0.1 + 4.0 * self.hdfs.namenode_latency_s(nn_ops)
            } else {
                0.0
            };

        // ---- straggler sampling + optional speculation ----
        // Per-task multipliers; the node-dependent base times are applied at
        // scheduling time, when the task's node is known.
        let mut mults: Vec<f64> = (0..ntasks).map(|_| self.straggler_mult()).collect();
        if self.eff.speculation && ntasks >= 4 {
            let mut sorted = mults.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let median = sorted[ntasks / 2];
            // Re-launch catches the tail (cap expressed on the multiplier).
            let cap = 1.6 * median + 0.6 / base_local.max(0.01);
            for m in &mut mults {
                if *m > cap {
                    *m = cap;
                    acc.tasks += 1; // speculative copy launched
                }
            }
        }

        // ---- the event loop ----
        let makespan =
            self.schedule_tasks(&mults, &node_base, input_file.as_ref(), slot_share, acc);

        // ---- non-fatal container kills stretch the stage ----
        let kill_events = if kill_p > 0.0 {
            let expected = kill_p * self.plan.total_executors as f64 * 0.5;
            let frac: f64 = self.rng.gen();
            (expected + frac * 0.5).floor() as u32
        } else {
            0
        };
        let mean_mult: f64 = mults.iter().sum::<f64>() / ntasks as f64;
        let kill_penalty = kill_events as f64
            * (CONTAINER_RELAUNCH_S
                + base_local * mean_mult * self.plan.slots_per_executor as f64 * 0.5);
        let _ = base_remote;

        // ---- accounting ----
        acc.tasks += ntasks as u32;
        acc.cpu_s += cpu_total * ntasks as f64;
        acc.gc_cpu_s += gc_extra * ntasks as f64;
        acc.spill_mb += spill_per_task * ntasks as f64;
        acc.kills += kill_events;
        match stage.read {
            DataSource::Hdfs { mb } => acc.hdfs_read_mb += mb,
            DataSource::Shuffle { mb } => acc.shuffle_mb += mb * read_comp_ratio,
            DataSource::Cached { mb, .. } => {
                acc.cache_reads_mb += mb;
                acc.cache_hits_mb += mb * mem.cache_hit;
                acc.hdfs_read_mb += mb * (1.0 - mem.cache_hit);
            }
        }
        match stage.write {
            DataSink::Hdfs { mb } => acc.hdfs_write_mb += mb,
            DataSink::Shuffle { .. } | DataSink::Driver => {}
        }

        Ok(setup + makespan + kill_penalty)
    }

    /// Lower-bound estimate used to charge partial time on failure.
    fn estimate_stage_floor(&self, stage: &StageSpec, ntasks: usize, task_input_mb: f64) -> f64 {
        let node = self.cluster.node();
        let cpu = stage.cpu_per_mb * task_input_mb / node.cpu_speed;
        let waves = (ntasks as f64 / self.plan.total_slots.max(1) as f64).ceil();
        waves * (cpu + TASK_OVERHEAD_S)
    }

    /// Multiplicative task-duration noise with a straggler tail.
    fn straggler_mult(&mut self) -> f64 {
        let base: f64 = 1.0 + 0.12 * self.rng.gen::<f64>();
        if self.rng.gen::<f64>() < 0.05 {
            base * (1.3 + 0.9 * self.rng.gen::<f64>())
        } else {
            base
        }
    }

    /// Event-driven assignment of tasks to slots with HDFS locality.
    ///
    /// `mults[i]` is task `i`'s straggler multiplier and `node_base[n]` the
    /// `(local_s, remote_s)` base duration on node `n` — the task's actual
    /// duration is only known once the scheduler picks its node. For stages
    /// reading an HDFS file, each task prefers the nodes holding its
    /// block's replicas (per the block-placement model); a free slot on a
    /// non-replica node leaves the task waiting up to `spark.locality.wait`
    /// before running it remotely.
    fn schedule_tasks(
        &mut self,
        mults: &[f64],
        node_base: &[(f64, f64)],
        input_file: Option<&HdfsFile>,
        slot_share: f64,
        acc: &mut Accum,
    ) -> f64 {
        let locality = input_file.is_some();
        // Build slots; a stage sharing a level with `k − 1` others only
        // sees `share` of each node's slots.
        let share = slot_share.clamp(0.0, 1.0);
        let mut slots: Vec<usize> = Vec::new(); // slot -> node
        for (nidx, &execs) in self.plan.executors_per_node.iter().enumerate() {
            let full = execs * self.plan.slots_per_executor;
            let granted = ((full as f64 * share).round() as u32).max(u32::from(full > 0));
            for _ in 0..granted.min(full) {
                slots.push(nidx);
            }
        }
        if slots.is_empty() {
            return f64::INFINITY;
        }
        let ntasks = mults.len();
        let is_local = |task: usize, node: usize| -> bool {
            input_file.map_or(true, |f| f.is_local(task % f.num_blocks().max(1), node))
        };

        #[derive(PartialEq)]
        struct F(f64);
        impl Eq for F {}
        impl PartialOrd for F {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for F {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Reverse<(F, usize)>> = slots
            .iter()
            .enumerate()
            .map(|(i, _)| Reverse((F(0.0), i)))
            .collect();
        let mut taken = vec![false; ntasks];
        let mut next_unscheduled = 0usize;
        let mut remaining = ntasks;
        let mut finish: f64 = 0.0;
        let wait = self.eff.locality_wait_s;
        let mut deferred: Vec<usize> = Vec::new(); // slots idling for locality

        while remaining > 0 {
            let Reverse((F(t), slot)) = match heap.pop() {
                Some(e) => e,
                None => break,
            };
            let node = slots[slot];
            // Find a local pending task.
            let mut chosen = None;
            let mut scan = next_unscheduled;
            let mut scanned = 0;
            while scan < ntasks && scanned < 64 {
                if !taken[scan] && is_local(scan, node) {
                    chosen = Some((scan, true));
                    break;
                }
                scan += 1;
                scanned += 1;
            }
            if chosen.is_none() {
                // No local task: honour the locality wait, then go remote.
                if wait > 0.0 && t < wait && locality {
                    deferred.push(slot);
                    if heap.is_empty() {
                        // Everyone is waiting: jump time to the wait boundary.
                        for s in deferred.drain(..) {
                            heap.push(Reverse((F(wait), s)));
                        }
                    }
                    continue;
                }
                chosen = (next_unscheduled..ntasks)
                    .find(|&i| !taken[i])
                    .map(|i| (i, false));
            }
            let Some((task, local)) = chosen else {
                // No pending tasks at all (tail of the stage): slot retires.
                if heap.is_empty() && remaining > 0 {
                    // All other slots busy; re-queue deferred ones.
                    for s in deferred.drain(..) {
                        heap.push(Reverse((F(t), s)));
                    }
                }
                continue;
            };
            taken[task] = true;
            while next_unscheduled < ntasks && taken[next_unscheduled] {
                next_unscheduled += 1;
            }
            remaining -= 1;
            let base = if local {
                node_base[node].0
            } else {
                node_base[node].1
            };
            let dur = base * mults[task];
            let end = t + dur;
            finish = finish.max(end);
            acc.task_s += dur;
            if self.trace {
                self.traces.push(TaskTrace {
                    stage: self.current_stage.clone(),
                    task,
                    node,
                    slot,
                    start_s: t,
                    duration_s: dur,
                    local,
                });
            }
            acc.busy_core_s[node] += dur * self.eff.task_cpus as f64;
            acc.io_core_s[node] += dur * 0.3; // coarse IO-wait share
            heap.push(Reverse((F(end), slot)));
            // Wake any deferred slots — new locality chances open as time
            // advances past the wait boundary.
            if !deferred.is_empty() && t >= wait {
                for s in deferred.drain(..) {
                    heap.push(Reverse((F(t), s)));
                }
            }
        }
        finish
    }

    fn finish(
        self,
        elapsed: f64,
        failed: Option<FailureKind>,
        stage_times: Vec<(String, f64)>,
        acc: Accum,
    ) -> SimOutcome {
        let nodes = self.cluster.num_nodes();
        let dur = elapsed.max(0.1);
        let mut load_avg = Vec::with_capacity(nodes);
        for n in 0..nodes {
            let cores = self.cluster.nodes[n].cores as f64;
            let run_q = (acc.busy_core_s[n] / dur).min(cores * 1.5);
            let io_q = acc.io_core_s[n] / dur;
            let l1 = run_q + io_q;
            load_avg.push([l1, l1 * 0.85, l1 * 0.7]);
        }
        let total_cores: f64 = self.cluster.nodes.iter().map(|n| n.cores as f64).sum();
        let cpu_util = (acc.busy_core_s.iter().sum::<f64>() / (dur * total_cores)).min(1.0);
        let io_wait = (acc.io_core_s.iter().sum::<f64>() / (dur * total_cores)).min(1.0);
        let metrics = RunMetrics {
            duration_s: dur,
            load_avg,
            cpu_util,
            io_wait,
            hdfs_read_mb: acc.hdfs_read_mb,
            hdfs_write_mb: acc.hdfs_write_mb,
            shuffle_mb: acc.shuffle_mb,
            spill_mb: acc.spill_mb,
            gc_frac: if acc.cpu_s > 0.0 {
                (acc.gc_cpu_s / acc.cpu_s).min(1.0)
            } else {
                0.0
            },
            cache_hit: if acc.cache_reads_mb > 0.0 {
                acc.cache_hits_mb / acc.cache_reads_mb
            } else {
                1.0
            },
            container_kills: acc.kills,
            tasks_launched: acc.tasks,
            avg_task_s: if acc.tasks > 0 {
                acc.task_s / acc.tasks as f64
            } else {
                0.0
            },
        };
        telemetry::inc("sim.runs", 1);
        telemetry::inc("sim.tasks", acc.tasks as u64);
        telemetry::inc("sim.container_kills", acc.kills as u64);
        if failed.is_some() {
            telemetry::inc("sim.failures", 1);
        }
        telemetry::observe_duration("sim.exec", dur);
        telemetry::event!(
            "sim.run",
            duration_s = dur,
            failed = failed.is_some(),
            stages = stage_times.len(),
            tasks = acc.tasks,
            kills = acc.kills,
        );
        SimOutcome {
            duration_s: dur,
            failed,
            stage_times,
            metrics,
            plan: Some(self.plan),
            task_traces: self.traces,
        }
    }
}

struct MemoryModel {
    heap: f64,
    pool: f64,
    execution_guaranteed: f64,
    cached_per_exec: f64,
    cache_hit: f64,
    container: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{idx, KnobSpace, KnobValue};
    use crate::workloads::{InputSize, Workload, WorkloadKind};

    fn space() -> KnobSpace {
        KnobSpace::pipeline()
    }

    fn run(cfg: &Configuration, w: Workload, seed: u64) -> SimOutcome {
        simulate(&Cluster::cluster_a(), cfg, &w.job_spec(), seed)
    }

    fn tuned_config() -> Configuration {
        let s = space();
        let mut cfg = s.default_config();
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(4096);
        cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(9);
        cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(96);
        cfg.values[idx::SERIALIZER] = KnobValue::Cat(1);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
        cfg.values[idx::NM_VCORES] = KnobValue::Int(14);
        cfg
    }

    #[test]
    fn default_terasort_completes_and_is_slow() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let out = run(&space().default_config(), w, 1);
        assert!(out.failed.is_none(), "{:?}", out.failed);
        assert!(
            out.duration_s > 60.0,
            "default should be slow, got {}",
            out.duration_s
        );
        assert_eq!(out.stage_times.len(), 3);
    }

    #[test]
    fn tuned_terasort_is_much_faster_than_default() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let d = run(&space().default_config(), w, 1);
        let t = run(&tuned_config(), w, 1);
        assert!(t.failed.is_none());
        assert!(
            t.duration_s * 2.0 < d.duration_s,
            "tuned {} vs default {}",
            t.duration_s,
            d.duration_s
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let w = Workload::new(WorkloadKind::PageRank, InputSize::D1);
        let a = run(&tuned_config(), w, 7);
        let b = run(&tuned_config(), w, 7);
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seed_changes_only_noise() {
        // The duration distribution over seeds is multi-modal: discrete
        // events (container kills, stragglers caught by speculation) shift
        // individual runs by tens of seconds. Comparing two hand-picked
        // seeds is therefore seed-lottery; instead assert that across a
        // spread of seeds every run completes and the spread stays within
        // the same order of magnitude — seed changes noise, not regime.
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let durations: Vec<f64> = (1..=6u64)
            .map(|seed| {
                let out = run(&tuned_config(), w, seed);
                assert!(out.failed.is_none(), "seed {seed}: {:?}", out.failed);
                out.duration_s
            })
            .collect();
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        let mut sorted = durations.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let spread = (max - min) / median;
        assert!(
            spread < 1.0,
            "seed spread too large: {spread} ({durations:?})"
        );
    }

    #[test]
    fn larger_input_takes_longer() {
        for kind in WorkloadKind::all() {
            let d1 = run(&tuned_config(), Workload::new(kind, InputSize::D1), 3);
            let d3 = run(&tuned_config(), Workload::new(kind, InputSize::D3), 3);
            if d1.failed.is_none() && d3.failed.is_none() {
                assert!(d3.duration_s > d1.duration_s, "{kind}");
            }
        }
    }

    #[test]
    fn kmeans_small_memory_risks_oom() {
        let s = space();
        let mut cfg = tuned_config();
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(1024);
        cfg.values[idx::MEMORY_FRACTION] = KnobValue::Float(0.3);
        let w = Workload::new(WorkloadKind::KMeans, InputSize::D3);
        let mut failures = 0;
        let mut slow = 0;
        for seed in 0..20 {
            let out = run(&cfg, w, seed);
            if out.failed.is_some() {
                failures += 1;
            } else if out.duration_s > 1.5 * run(&tuned_config(), w, seed).duration_s {
                slow += 1;
            }
        }
        assert!(
            failures + slow > 5,
            "memory-starved KMeans should fail or crawl: {failures} failures, {slow} slow"
        );
        let _ = s;
    }

    #[test]
    fn load_average_rises_with_parallelism() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D2);
        let d = run(&space().default_config(), w, 5);
        let t = run(&tuned_config(), w, 5);
        let avg = |o: &SimOutcome| {
            o.metrics.load_avg.iter().map(|l| l[0]).sum::<f64>() / o.metrics.load_avg.len() as f64
        };
        assert!(
            avg(&t) > avg(&d),
            "tuned {} vs default {}",
            avg(&t),
            avg(&d)
        );
    }

    #[test]
    fn negotiation_failure_is_reported() {
        let s = space();
        let mut cfg = s.default_config();
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(12288);
        cfg.values[idx::SCHED_MAX_ALLOC_MB] = KnobValue::Int(14336);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(4096);
        let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
        let out = run(&cfg, w, 1);
        assert!(matches!(out.failed, Some(FailureKind::Negotiation(_))));
    }

    #[test]
    fn driver_oom_on_tiny_driver() {
        let mut cfg = tuned_config();
        cfg.values[idx::DRIVER_MEMORY_MB] = KnobValue::Int(512);
        cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(512);
        let w = Workload::new(WorkloadKind::KMeans, InputSize::D3);
        let out = run(&cfg, w, 1);
        // Either a driver OOM or at minimum a completed-but-slowed run.
        if let Some(k) = &out.failed {
            assert_eq!(*k, FailureKind::DriverOom);
        }
    }

    #[test]
    fn replication_one_slows_locality_but_speeds_writes() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D2);
        let mut r1 = tuned_config();
        r1.values[idx::DFS_REPLICATION] = KnobValue::Int(1);
        let mut r3 = tuned_config();
        r3.values[idx::DFS_REPLICATION] = KnobValue::Int(3);
        let o1 = run(&r1, w, 9);
        let o3 = run(&r3, w, 9);
        // Both complete; they trade read locality for write amplification,
        // so neither should dominate by a huge margin.
        assert!(o1.failed.is_none() && o3.failed.is_none());
        let ratio = o1.duration_s / o3.duration_s;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn kryo_helps_shuffle_heavy_workload() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D2);
        let mut java = tuned_config();
        java.values[idx::SERIALIZER] = KnobValue::Cat(0);
        let mut kryo = tuned_config();
        kryo.values[idx::SERIALIZER] = KnobValue::Cat(1);
        let oj = run(&java, w, 11);
        let ok = run(&kryo, w, 11);
        assert!(ok.duration_s < oj.duration_s);
    }

    #[test]
    fn metrics_populated_on_success() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let out = run(&tuned_config(), w, 13);
        let m = &out.metrics;
        assert!(m.hdfs_read_mb > 0.0);
        assert!(m.shuffle_mb > 0.0);
        assert!(m.tasks_launched > 0);
        assert!(m.cpu_util > 0.0 && m.cpu_util <= 1.0);
        assert_eq!(m.load_avg.len(), 3);
    }
}
