//! HiBench-style workload models: WordCount, TeraSort, PageRank and KMeans,
//! each with the three input scales of Table 1.
//!
//! A workload compiles to a [`JobSpec`]: an ordered list of stages with data
//! sources/sinks and CPU intensities. Iterative workloads (PageRank, KMeans)
//! unroll their iterations into repeated stages, with the RDDs they cache
//! recorded so the engine can model storage-memory pressure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four benchmark applications (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    WordCount,
    TeraSort,
    PageRank,
    KMeans,
    /// HiBench `micro/sort` — extension beyond the paper's four workloads.
    Sort,
    /// HiBench `micro/aggregation` — extension beyond the paper's four.
    Aggregation,
    /// HiBench `graph/nweight` (iterated sparse matrix multiplication) —
    /// extension beyond the paper's four.
    NWeight,
    /// HiBench `ml/bayes` (naive Bayes training) — extension beyond the
    /// paper's four.
    Bayes,
}

impl WorkloadKind {
    /// The four applications evaluated in the paper (Table 1).
    pub fn all() -> [WorkloadKind; 4] {
        [
            WorkloadKind::WordCount,
            WorkloadKind::TeraSort,
            WorkloadKind::PageRank,
            WorkloadKind::KMeans,
        ]
    }

    /// The paper's four plus the extension workloads this library adds.
    pub fn extended() -> [WorkloadKind; 8] {
        [
            WorkloadKind::WordCount,
            WorkloadKind::TeraSort,
            WorkloadKind::PageRank,
            WorkloadKind::KMeans,
            WorkloadKind::Sort,
            WorkloadKind::Aggregation,
            WorkloadKind::NWeight,
            WorkloadKind::Bayes,
        ]
    }

    /// HiBench category (Table 1).
    pub fn category(self) -> &'static str {
        match self {
            WorkloadKind::WordCount
            | WorkloadKind::TeraSort
            | WorkloadKind::Sort
            | WorkloadKind::Aggregation => "micro",
            WorkloadKind::PageRank => "websearch",
            WorkloadKind::NWeight => "graph",
            WorkloadKind::KMeans | WorkloadKind::Bayes => "ML",
        }
    }

    /// Two-letter abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            WorkloadKind::WordCount => "WC",
            WorkloadKind::TeraSort => "TS",
            WorkloadKind::PageRank => "PR",
            WorkloadKind::KMeans => "KM",
            WorkloadKind::Sort => "SO",
            WorkloadKind::Aggregation => "AG",
            WorkloadKind::NWeight => "NW",
            WorkloadKind::Bayes => "BA",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Input scale (Table 1: D1 < D2 < D3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InputSize {
    D1,
    D2,
    D3,
}

impl InputSize {
    pub fn all() -> [InputSize; 3] {
        [InputSize::D1, InputSize::D2, InputSize::D3]
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSize::D1 => f.write_str("D1"),
            InputSize::D2 => f.write_str("D2"),
            InputSize::D3 => f.write_str("D3"),
        }
    }
}

/// A (workload, input) pair — one of the paper's 12 evaluation points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    pub kind: WorkloadKind,
    pub input: InputSize,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.kind, self.input)
    }
}

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

impl Workload {
    pub fn new(kind: WorkloadKind, input: InputSize) -> Self {
        Self { kind, input }
    }

    /// All 12 workload-input pairs evaluated in the paper.
    pub fn all_pairs() -> Vec<Workload> {
        let mut v = Vec::with_capacity(12);
        for kind in WorkloadKind::all() {
            for input in InputSize::all() {
                v.push(Workload::new(kind, input));
            }
        }
        v
    }

    /// The nominal dataset descriptor from Table 1.
    pub fn input_description(&self) -> String {
        match (self.kind, self.input) {
            (WorkloadKind::WordCount, InputSize::D1) => "3.2 GB".into(),
            (WorkloadKind::WordCount, InputSize::D2) => "10 GB".into(),
            (WorkloadKind::WordCount, InputSize::D3) => "20 GB".into(),
            (WorkloadKind::TeraSort, InputSize::D1) => "3.2 GB".into(),
            (WorkloadKind::TeraSort, InputSize::D2) => "6 GB".into(),
            (WorkloadKind::TeraSort, InputSize::D3) => "10 GB".into(),
            (WorkloadKind::PageRank, InputSize::D1) => "0.5 M pages".into(),
            (WorkloadKind::PageRank, InputSize::D2) => "1 M pages".into(),
            (WorkloadKind::PageRank, InputSize::D3) => "1.6 M pages".into(),
            (WorkloadKind::KMeans, InputSize::D1) => "20 M points".into(),
            (WorkloadKind::KMeans, InputSize::D2) => "30 M points".into(),
            (WorkloadKind::KMeans, InputSize::D3) => "40 M points".into(),
            (WorkloadKind::Sort, InputSize::D1) => "3.2 GB".into(),
            (WorkloadKind::Sort, InputSize::D2) => "6 GB".into(),
            (WorkloadKind::Sort, InputSize::D3) => "10 GB".into(),
            (WorkloadKind::Aggregation, InputSize::D1) => "2 GB".into(),
            (WorkloadKind::Aggregation, InputSize::D2) => "5 GB".into(),
            (WorkloadKind::Aggregation, InputSize::D3) => "8 GB".into(),
            (WorkloadKind::NWeight, InputSize::D1) => "1 M edges".into(),
            (WorkloadKind::NWeight, InputSize::D2) => "2 M edges".into(),
            (WorkloadKind::NWeight, InputSize::D3) => "4 M edges".into(),
            (WorkloadKind::Bayes, InputSize::D1) => "1.5 GB".into(),
            (WorkloadKind::Bayes, InputSize::D2) => "3 GB".into(),
            (WorkloadKind::Bayes, InputSize::D3) => "6 GB".into(),
        }
    }

    /// On-disk input bytes. Page and point counts are converted with
    /// HiBench-like record sizes (~1.6 KB per page row incl. outlinks,
    /// ~160 B per 20-dim point).
    pub fn input_bytes(&self) -> u64 {
        match (self.kind, self.input) {
            (WorkloadKind::WordCount, InputSize::D1) => (3.2 * GB as f64) as u64,
            (WorkloadKind::WordCount, InputSize::D2) => 10 * GB,
            (WorkloadKind::WordCount, InputSize::D3) => 20 * GB,
            (WorkloadKind::TeraSort, InputSize::D1) => (3.2 * GB as f64) as u64,
            (WorkloadKind::TeraSort, InputSize::D2) => 6 * GB,
            (WorkloadKind::TeraSort, InputSize::D3) => 10 * GB,
            (WorkloadKind::PageRank, InputSize::D1) => (0.8 * GB as f64) as u64,
            (WorkloadKind::PageRank, InputSize::D2) => (1.6 * GB as f64) as u64,
            (WorkloadKind::PageRank, InputSize::D3) => (2.56 * GB as f64) as u64,
            (WorkloadKind::KMeans, InputSize::D1) => (3.2 * GB as f64) as u64,
            (WorkloadKind::KMeans, InputSize::D2) => (4.8 * GB as f64) as u64,
            (WorkloadKind::KMeans, InputSize::D3) => (6.4 * GB as f64) as u64,
            (WorkloadKind::Sort, InputSize::D1) => (3.2 * GB as f64) as u64,
            (WorkloadKind::Sort, InputSize::D2) => 6 * GB,
            (WorkloadKind::Sort, InputSize::D3) => 10 * GB,
            (WorkloadKind::Aggregation, InputSize::D1) => 2 * GB,
            (WorkloadKind::Aggregation, InputSize::D2) => 5 * GB,
            (WorkloadKind::Aggregation, InputSize::D3) => 8 * GB,
            (WorkloadKind::NWeight, InputSize::D1) => (0.6 * GB as f64) as u64,
            (WorkloadKind::NWeight, InputSize::D2) => (1.2 * GB as f64) as u64,
            (WorkloadKind::NWeight, InputSize::D3) => (2.4 * GB as f64) as u64,
            (WorkloadKind::Bayes, InputSize::D1) => (1.5 * GB as f64) as u64,
            (WorkloadKind::Bayes, InputSize::D2) => 3 * GB,
            (WorkloadKind::Bayes, InputSize::D3) => 6 * GB,
        }
    }

    /// Compile to the stage DAG (a chain; Spark schedules HiBench jobs as a
    /// linear sequence of shuffle-bounded stages).
    pub fn job_spec(&self) -> JobSpec {
        let input_mb = (self.input_bytes() / MB) as f64;
        match self.kind {
            WorkloadKind::WordCount => wordcount(input_mb),
            WorkloadKind::TeraSort => terasort(input_mb),
            WorkloadKind::PageRank => pagerank(input_mb),
            WorkloadKind::KMeans => kmeans(input_mb),
            WorkloadKind::Sort => sort(input_mb),
            WorkloadKind::Aggregation => aggregation(input_mb),
            WorkloadKind::NWeight => nweight(input_mb),
            WorkloadKind::Bayes => bayes(input_mb),
        }
    }
}

/// Where a stage's input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataSource {
    /// Read `mb` from HDFS (task count derives from the block size).
    Hdfs { mb: f64 },
    /// Fetch `mb` from the previous stage's shuffle output.
    Shuffle { mb: f64 },
    /// Iterate over a cached RDD of logical size `mb`; partitions that do
    /// not fit in storage memory are recomputed at `recompute_cpu_per_mb`
    /// CPU-seconds/MB plus an HDFS re-read.
    Cached { mb: f64, recompute_cpu_per_mb: f64 },
}

impl DataSource {
    pub fn mb(&self) -> f64 {
        match *self {
            DataSource::Hdfs { mb }
            | DataSource::Shuffle { mb }
            | DataSource::Cached { mb, .. } => mb,
        }
    }
}

/// Where a stage's output goes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataSink {
    /// Write `mb` to HDFS; replicas beyond the first cross the network.
    Hdfs { mb: f64 },
    /// Produce `mb` of map output for the next stage's shuffle.
    Shuffle { mb: f64 },
    /// Results returned to the driver (negligible bytes).
    Driver,
}

impl DataSink {
    pub fn mb(&self) -> f64 {
        match *self {
            DataSink::Hdfs { mb } | DataSink::Shuffle { mb } => mb,
            DataSink::Driver => 0.0,
        }
    }
}

/// How the number of tasks of a stage is determined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskSizing {
    /// One task per HDFS input split (`ceil(bytes / dfs.blocksize)`).
    ByInputSplits,
    /// `spark.default.parallelism` tasks.
    ByParallelism,
    /// A fixed count (e.g. a tiny sampling stage).
    Fixed(u32),
}

/// One stage of a Spark job.
#[derive(Clone, Debug, Serialize)]
pub struct StageSpec {
    pub name: &'static str,
    pub read: DataSource,
    pub write: DataSink,
    pub sizing: TaskSizing,
    /// CPU-seconds per MB of input on a reference core, *excluding*
    /// serialization and compression work (the engine adds those from the
    /// config).
    pub cpu_per_mb: f64,
    /// Fraction of the CPU work that is (de)serialization — Kryo cuts this
    /// portion roughly in half.
    pub ser_fraction: f64,
    /// True for sort-like stages whose shuffle write goes through the
    /// sort-merge path (affected by the bypass-merge threshold).
    pub sort_like: bool,
    /// MB added to the executor-storage working set after this stage
    /// (cached RDDs).
    pub cache_out_mb: f64,
    /// Peak per-task memory demand in MB *per MB of task input* for
    /// execution memory (shuffle/sort/aggregation buffers). Demand beyond
    /// the task's share of execution memory spills to disk.
    pub exec_mem_per_input_mb: f64,
    /// Native / off-heap spike per task (MB) — drives pmem/vmem kills.
    pub native_spike_mb: f64,
}

/// A compiled job: a DAG of stages plus bookkeeping for cached data.
#[derive(Clone, Debug, Serialize)]
pub struct JobSpec {
    pub stages: Vec<StageSpec>,
    /// `dependencies[i]` lists the stage indices stage `i` waits on.
    /// Stages whose dependencies are all complete run concurrently,
    /// sharing the executor slots (Spark's FIFO in-job scheduling).
    pub dependencies: Vec<Vec<usize>>,
    /// Logical (uncompressed, deserialized-equivalent) size of all RDDs the
    /// job wants resident in cache at peak, in MB.
    pub peak_cache_mb: f64,
    /// Relative weight of driver-side work (broadcasts, result handling);
    /// scaled by broadcast block size and driver resources in the engine.
    pub driver_work: f64,
}

/// Error from [`JobSpec::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// A dependency index is out of range.
    BadIndex { stage: usize, dep: usize },
    /// The dependency graph contains a cycle.
    Cyclic,
    /// `dependencies` and `stages` lengths differ.
    LengthMismatch,
}

impl JobSpec {
    /// Build a linear chain: stage `i` depends on stage `i − 1`.
    pub fn chain(stages: Vec<StageSpec>, peak_cache_mb: f64, driver_work: f64) -> Self {
        let dependencies = (0..stages.len())
            .map(|i| if i == 0 { Vec::new() } else { vec![i - 1] })
            .collect();
        JobSpec {
            stages,
            dependencies,
            peak_cache_mb,
            driver_work,
        }
    }

    /// Check the DAG is well-formed and acyclic.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.dependencies.len() != self.stages.len() {
            return Err(DagError::LengthMismatch);
        }
        for (i, deps) in self.dependencies.iter().enumerate() {
            for &d in deps {
                if d >= self.stages.len() {
                    return Err(DagError::BadIndex { stage: i, dep: d });
                }
            }
        }
        self.levels().map(|_| ()).ok_or(DagError::Cyclic)
    }

    /// Topological levels: each level's stages have all dependencies in
    /// earlier levels and run concurrently. Returns `None` on a cycle.
    pub fn levels(&self) -> Option<Vec<Vec<usize>>> {
        let n = self.stages.len();
        let mut level = vec![usize::MAX; n];
        let mut done = 0;
        let mut current = 0usize;
        while done < n {
            let mut placed_any = false;
            for i in 0..n {
                if level[i] != usize::MAX {
                    continue;
                }
                // A stage joins the current level only if every dependency
                // sits in a strictly earlier level.
                let ready = self.dependencies[i]
                    .iter()
                    .all(|&d| level[d] != usize::MAX && level[d] < current);
                if ready {
                    level[i] = current;
                    done += 1;
                    placed_any = true;
                }
            }
            if !placed_any {
                return None; // cycle
            }
            current += 1;
        }
        let max_level = current;
        let mut out = vec![Vec::new(); max_level];
        for (i, &l) in level.iter().enumerate() {
            out[l].push(i);
        }
        out.retain(|v| !v.is_empty());
        Some(out)
    }

    /// Total bytes read from HDFS across stages (MB).
    pub fn hdfs_read_mb(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| match s.read {
                DataSource::Hdfs { mb } => mb,
                _ => 0.0,
            })
            .sum()
    }

    /// Total shuffle MB moved between stages.
    pub fn shuffle_mb(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| match s.write {
                DataSink::Shuffle { mb } => mb,
                _ => 0.0,
            })
            .sum()
    }
}

/// WordCount: map (read + tokenize + partial aggregation) then a small
/// reduce. IO-dominated map; tiny shuffle thanks to map-side combining.
fn wordcount(input_mb: f64) -> JobSpec {
    let shuffle = input_mb * 0.05;
    let out = input_mb * 0.01;
    JobSpec::chain(
        vec![
            StageSpec {
                name: "wc-map",
                read: DataSource::Hdfs { mb: input_mb },
                write: DataSink::Shuffle { mb: shuffle },
                sizing: TaskSizing::ByInputSplits,
                cpu_per_mb: 0.035,
                ser_fraction: 0.25,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.35,
                native_spike_mb: 150.0,
            },
            StageSpec {
                name: "wc-reduce",
                read: DataSource::Shuffle { mb: shuffle },
                write: DataSink::Hdfs { mb: out },
                sizing: TaskSizing::ByParallelism,
                cpu_per_mb: 0.030,
                ser_fraction: 0.35,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.8,
                native_spike_mb: 120.0,
            },
        ],
        0.0,
        0.5,
    )
}

/// TeraSort: tiny range-sampling stage, full-data map with sort-shuffle
/// write, then the sort-merge reduce writing the replicated output.
fn terasort(input_mb: f64) -> JobSpec {
    JobSpec::chain(
        vec![
            StageSpec {
                name: "ts-sample",
                read: DataSource::Hdfs {
                    mb: input_mb * 0.01,
                },
                write: DataSink::Driver,
                sizing: TaskSizing::Fixed(16),
                cpu_per_mb: 0.020,
                ser_fraction: 0.2,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.1,
                native_spike_mb: 60.0,
            },
            StageSpec {
                name: "ts-map",
                read: DataSource::Hdfs { mb: input_mb },
                write: DataSink::Shuffle { mb: input_mb },
                sizing: TaskSizing::ByInputSplits,
                cpu_per_mb: 0.060,
                ser_fraction: 0.45,
                sort_like: true,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.1,
                native_spike_mb: 200.0,
            },
            StageSpec {
                name: "ts-reduce",
                read: DataSource::Shuffle { mb: input_mb },
                write: DataSink::Hdfs { mb: input_mb },
                sizing: TaskSizing::ByParallelism,
                cpu_per_mb: 0.080,
                ser_fraction: 0.45,
                sort_like: true,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.3,
                native_spike_mb: 220.0,
            },
        ],
        0.0,
        1.0,
    )
}

/// PageRank iterations (HiBench runs 3): build + cache the link table, then
/// per-iteration join/aggregate shuffles, then rank output.
fn pagerank(input_mb: f64) -> JobSpec {
    const ITERS: usize = 3;
    let links_mb = input_mb * 1.4; // parsed adjacency list is bigger than text
    let ranks_mb = input_mb * 0.12;
    // Stage 0 and 1 are independent (both scan the input) and run
    // concurrently; every iteration joins the cached links with the
    // previous ranks — a genuine DAG, not a chain.
    let mut stages = vec![
        StageSpec {
            name: "pr-build-links",
            read: DataSource::Hdfs { mb: input_mb },
            write: DataSink::Shuffle { mb: links_mb },
            sizing: TaskSizing::ByInputSplits,
            cpu_per_mb: 0.050,
            ser_fraction: 0.4,
            sort_like: false,
            cache_out_mb: links_mb,
            exec_mem_per_input_mb: 1.0,
            native_spike_mb: 180.0,
        },
        StageSpec {
            name: "pr-init-ranks",
            read: DataSource::Hdfs { mb: input_mb * 0.2 },
            write: DataSink::Shuffle { mb: ranks_mb },
            sizing: TaskSizing::ByInputSplits,
            cpu_per_mb: 0.020,
            ser_fraction: 0.3,
            sort_like: false,
            cache_out_mb: 0.0,
            exec_mem_per_input_mb: 0.4,
            native_spike_mb: 120.0,
        },
    ];
    let mut dependencies: Vec<Vec<usize>> = vec![vec![], vec![]];
    for i in 0..ITERS {
        stages.push(StageSpec {
            name: pr_iter_name(i),
            read: DataSource::Cached {
                mb: links_mb,
                recompute_cpu_per_mb: 0.050,
            },
            write: DataSink::Shuffle {
                mb: ranks_mb + links_mb * 0.25,
            },
            sizing: TaskSizing::ByParallelism,
            cpu_per_mb: 0.055,
            ser_fraction: 0.5,
            sort_like: false,
            cache_out_mb: 0.0,
            exec_mem_per_input_mb: 0.9,
            native_spike_mb: 200.0,
        });
        let idx = stages.len() - 1;
        if i == 0 {
            dependencies.push(vec![0, 1]); // join(links, ranks₀)
        } else {
            dependencies.push(vec![idx - 1]);
        }
    }
    stages.push(StageSpec {
        name: "pr-output",
        read: DataSource::Shuffle { mb: ranks_mb },
        write: DataSink::Hdfs { mb: ranks_mb },
        sizing: TaskSizing::ByParallelism,
        cpu_per_mb: 0.030,
        ser_fraction: 0.3,
        sort_like: false,
        cache_out_mb: 0.0,
        exec_mem_per_input_mb: 0.4,
        native_spike_mb: 100.0,
    });
    dependencies.push(vec![stages.len() - 2]);
    JobSpec {
        stages,
        dependencies,
        peak_cache_mb: links_mb,
        driver_work: 1.5,
    }
}

fn pr_iter_name(i: usize) -> &'static str {
    const NAMES: [&str; 8] = [
        "pr-iter-0",
        "pr-iter-1",
        "pr-iter-2",
        "pr-iter-3",
        "pr-iter-4",
        "pr-iter-5",
        "pr-iter-6",
        "pr-iter-7",
    ];
    NAMES[i.min(NAMES.len() - 1)]
}

/// KMeans (HiBench runs 5 Lloyd iterations over cached points): heavy CPU
/// per iteration, near-zero shuffle (centroid updates), but the cached
/// point vectors dominate storage memory — the paper's OOM-prone workload.
fn kmeans(input_mb: f64) -> JobSpec {
    const ITERS: usize = 5;
    let cached_mb = input_mb * 2.4; // deserialized Java object overhead
    let mut stages = vec![StageSpec {
        name: "km-load",
        read: DataSource::Hdfs { mb: input_mb },
        write: DataSink::Driver,
        sizing: TaskSizing::ByInputSplits,
        cpu_per_mb: 0.045,
        ser_fraction: 0.5,
        sort_like: false,
        cache_out_mb: cached_mb,
        exec_mem_per_input_mb: 0.5,
        native_spike_mb: 260.0,
    }];
    for i in 0..ITERS {
        stages.push(StageSpec {
            name: km_iter_name(i),
            read: DataSource::Cached {
                mb: cached_mb,
                recompute_cpu_per_mb: 0.045,
            },
            write: DataSink::Shuffle { mb: 2.0 }, // centroid partial sums
            sizing: TaskSizing::ByParallelism,
            cpu_per_mb: 0.040,
            ser_fraction: 0.35,
            sort_like: false,
            cache_out_mb: 0.0,
            exec_mem_per_input_mb: 0.25,
            native_spike_mb: 300.0,
        });
    }
    stages.push(StageSpec {
        name: "km-output",
        read: DataSource::Shuffle { mb: 2.0 },
        write: DataSink::Hdfs { mb: 1.0 },
        sizing: TaskSizing::Fixed(4),
        cpu_per_mb: 0.02,
        ser_fraction: 0.3,
        sort_like: false,
        cache_out_mb: 0.0,
        exec_mem_per_input_mb: 0.2,
        native_spike_mb: 60.0,
    });
    JobSpec::chain(stages, cached_mb, 2.0)
}

/// Sort: like TeraSort but with lighter record processing — a pure
/// shuffle benchmark (extension workload).
fn sort(input_mb: f64) -> JobSpec {
    JobSpec::chain(
        vec![
            StageSpec {
                name: "so-map",
                read: DataSource::Hdfs { mb: input_mb },
                write: DataSink::Shuffle { mb: input_mb },
                sizing: TaskSizing::ByInputSplits,
                cpu_per_mb: 0.040,
                ser_fraction: 0.5,
                sort_like: true,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.0,
                native_spike_mb: 180.0,
            },
            StageSpec {
                name: "so-reduce",
                read: DataSource::Shuffle { mb: input_mb },
                write: DataSink::Hdfs { mb: input_mb },
                sizing: TaskSizing::ByParallelism,
                cpu_per_mb: 0.050,
                ser_fraction: 0.5,
                sort_like: true,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.2,
                native_spike_mb: 200.0,
            },
        ],
        0.0,
        0.8,
    )
}

/// Aggregation: scan + hash-aggregate with a medium shuffle and a small
/// result (extension workload, HiBench `micro/aggregation`).
fn aggregation(input_mb: f64) -> JobSpec {
    let shuffle = input_mb * 0.25;
    JobSpec::chain(
        vec![
            StageSpec {
                name: "ag-scan",
                read: DataSource::Hdfs { mb: input_mb },
                write: DataSink::Shuffle { mb: shuffle },
                sizing: TaskSizing::ByInputSplits,
                cpu_per_mb: 0.045,
                ser_fraction: 0.35,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.9,
                native_spike_mb: 170.0,
            },
            StageSpec {
                name: "ag-aggregate",
                read: DataSource::Shuffle { mb: shuffle },
                write: DataSink::Hdfs {
                    mb: input_mb * 0.05,
                },
                sizing: TaskSizing::ByParallelism,
                cpu_per_mb: 0.040,
                ser_fraction: 0.4,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.1,
                native_spike_mb: 190.0,
            },
        ],
        0.0,
        0.7,
    )
}

/// NWeight: iterated weighted-neighbour expansion over a cached edge list
/// — shuffle grows each hop (extension workload, HiBench `graph/nweight`).
fn nweight(input_mb: f64) -> JobSpec {
    const HOPS: usize = 2;
    let edges_mb = input_mb * 1.6; // parsed edge triples
    let mut stages = vec![StageSpec {
        name: "nw-load",
        read: DataSource::Hdfs { mb: input_mb },
        write: DataSink::Shuffle { mb: edges_mb },
        sizing: TaskSizing::ByInputSplits,
        cpu_per_mb: 0.045,
        ser_fraction: 0.45,
        sort_like: false,
        cache_out_mb: edges_mb,
        exec_mem_per_input_mb: 1.0,
        native_spike_mb: 180.0,
    }];
    let mut dependencies: Vec<Vec<usize>> = vec![vec![]];
    const HOP_NAMES: [&str; 4] = ["nw-hop-0", "nw-hop-1", "nw-hop-2", "nw-hop-3"];
    for h in 0..HOPS {
        stages.push(StageSpec {
            name: HOP_NAMES[h.min(HOP_NAMES.len() - 1)],
            read: DataSource::Cached {
                mb: edges_mb,
                recompute_cpu_per_mb: 0.045,
            },
            // Each hop's frontier grows: bigger shuffle per hop.
            write: DataSink::Shuffle {
                mb: edges_mb * (0.5 + 0.5 * h as f64),
            },
            sizing: TaskSizing::ByParallelism,
            cpu_per_mb: 0.06,
            ser_fraction: 0.5,
            sort_like: false,
            cache_out_mb: 0.0,
            exec_mem_per_input_mb: 1.1,
            native_spike_mb: 220.0,
        });
        dependencies.push(vec![stages.len() - 2]);
    }
    stages.push(StageSpec {
        name: "nw-output",
        read: DataSource::Shuffle { mb: edges_mb },
        write: DataSink::Hdfs { mb: edges_mb * 0.4 },
        sizing: TaskSizing::ByParallelism,
        cpu_per_mb: 0.02,
        ser_fraction: 0.3,
        sort_like: false,
        cache_out_mb: 0.0,
        exec_mem_per_input_mb: 0.5,
        native_spike_mb: 120.0,
    });
    dependencies.push(vec![stages.len() - 2]);
    JobSpec {
        stages,
        dependencies,
        peak_cache_mb: edges_mb,
        driver_work: 1.2,
    }
}

/// Naive Bayes training: tokenize + count (shuffle of term counts), then a
/// model-aggregation stage with a small broadcast-heavy result (extension
/// workload, HiBench `ml/bayes`).
fn bayes(input_mb: f64) -> JobSpec {
    let counts_mb = input_mb * 0.3;
    JobSpec::chain(
        vec![
            StageSpec {
                name: "ba-tokenize",
                read: DataSource::Hdfs { mb: input_mb },
                write: DataSink::Shuffle { mb: counts_mb },
                sizing: TaskSizing::ByInputSplits,
                cpu_per_mb: 0.055,
                ser_fraction: 0.4,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.9,
                native_spike_mb: 200.0,
            },
            StageSpec {
                name: "ba-aggregate",
                read: DataSource::Shuffle { mb: counts_mb },
                write: DataSink::Shuffle {
                    mb: counts_mb * 0.2,
                },
                sizing: TaskSizing::ByParallelism,
                cpu_per_mb: 0.045,
                ser_fraction: 0.45,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 1.0,
                native_spike_mb: 190.0,
            },
            StageSpec {
                name: "ba-model",
                read: DataSource::Shuffle {
                    mb: counts_mb * 0.2,
                },
                write: DataSink::Hdfs {
                    mb: counts_mb * 0.05,
                },
                sizing: TaskSizing::Fixed(8),
                cpu_per_mb: 0.03,
                ser_fraction: 0.3,
                sort_like: false,
                cache_out_mb: 0.0,
                exec_mem_per_input_mb: 0.4,
                native_spike_mb: 100.0,
            },
        ],
        0.0,
        1.8, // heavy driver share: model broadcast back to executors
    )
}

fn km_iter_name(i: usize) -> &'static str {
    const NAMES: [&str; 8] = [
        "km-iter-0",
        "km-iter-1",
        "km-iter-2",
        "km-iter-3",
        "km-iter-4",
        "km-iter-5",
        "km-iter-6",
        "km-iter-7",
    ];
    NAMES[i.min(NAMES.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_pairs() {
        let pairs = Workload::all_pairs();
        assert_eq!(pairs.len(), 12);
        // distinct
        for (i, a) in pairs.iter().enumerate() {
            for b in &pairs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn categories_match_table1() {
        assert_eq!(WorkloadKind::WordCount.category(), "micro");
        assert_eq!(WorkloadKind::TeraSort.category(), "micro");
        assert_eq!(WorkloadKind::PageRank.category(), "websearch");
        assert_eq!(WorkloadKind::KMeans.category(), "ML");
    }

    #[test]
    fn input_sizes_strictly_increase() {
        for kind in WorkloadKind::all() {
            let b1 = Workload::new(kind, InputSize::D1).input_bytes();
            let b2 = Workload::new(kind, InputSize::D2).input_bytes();
            let b3 = Workload::new(kind, InputSize::D3).input_bytes();
            assert!(b1 < b2 && b2 < b3, "{kind}");
        }
    }

    #[test]
    fn terasort_shuffles_its_whole_input() {
        let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
        let spec = w.job_spec();
        let input_mb = (w.input_bytes() / MB) as f64;
        assert!((spec.shuffle_mb() - input_mb).abs() < 1.0);
    }

    #[test]
    fn wordcount_shuffle_is_small() {
        let spec = Workload::new(WorkloadKind::WordCount, InputSize::D2).job_spec();
        assert!(spec.shuffle_mb() < spec.hdfs_read_mb() * 0.1);
    }

    #[test]
    fn kmeans_is_cache_heavy_and_shuffle_light() {
        let spec = Workload::new(WorkloadKind::KMeans, InputSize::D1).job_spec();
        assert!(spec.peak_cache_mb > spec.hdfs_read_mb());
        assert!(spec.shuffle_mb() < 100.0);
        // 5 iterations + load + output
        assert_eq!(spec.stages.len(), 7);
    }

    #[test]
    fn pagerank_iterates_three_times() {
        let spec = Workload::new(WorkloadKind::PageRank, InputSize::D1).job_spec();
        let iters = spec
            .stages
            .iter()
            .filter(|s| s.name.starts_with("pr-iter"))
            .count();
        assert_eq!(iters, 3);
        assert!(spec.peak_cache_mb > 0.0);
    }

    #[test]
    fn chain_dependencies_are_linear() {
        let spec = Workload::new(WorkloadKind::TeraSort, InputSize::D1).job_spec();
        spec.validate().unwrap();
        assert_eq!(spec.dependencies[0], Vec::<usize>::new());
        assert_eq!(spec.dependencies[1], vec![0]);
        let levels = spec.levels().unwrap();
        assert!(
            levels.iter().all(|l| l.len() == 1),
            "a chain has singleton levels"
        );
    }

    #[test]
    fn pagerank_is_a_real_dag() {
        let spec = Workload::new(WorkloadKind::PageRank, InputSize::D1).job_spec();
        spec.validate().unwrap();
        let levels = spec.levels().unwrap();
        // build-links and init-ranks run concurrently in level 0.
        assert_eq!(levels[0].len(), 2, "{levels:?}");
        // The first iteration joins both parents.
        let first_iter = spec
            .stages
            .iter()
            .position(|st| st.name == "pr-iter-0")
            .unwrap();
        assert_eq!(spec.dependencies[first_iter], vec![0, 1]);
    }

    #[test]
    fn cyclic_dag_is_rejected() {
        let mut spec = Workload::new(WorkloadKind::WordCount, InputSize::D1).job_spec();
        spec.dependencies[0] = vec![1]; // 0 → 1 → 0
        assert_eq!(spec.validate(), Err(DagError::Cyclic));
        assert!(spec.levels().is_none());
    }

    #[test]
    fn bad_dependency_index_is_rejected() {
        let mut spec = Workload::new(WorkloadKind::WordCount, InputSize::D1).job_spec();
        spec.dependencies[1] = vec![99];
        assert_eq!(
            spec.validate(),
            Err(DagError::BadIndex { stage: 1, dep: 99 })
        );
    }

    #[test]
    fn extension_workloads_compile_and_validate() {
        for kind in [
            WorkloadKind::Sort,
            WorkloadKind::Aggregation,
            WorkloadKind::NWeight,
            WorkloadKind::Bayes,
        ] {
            for input in InputSize::all() {
                let w = Workload::new(kind, input);
                let spec = w.job_spec();
                spec.validate().unwrap();
                assert!(!spec.stages.is_empty());
                assert!(w.input_bytes() > 0);
                assert!(!kind.category().is_empty());
            }
        }
    }

    #[test]
    fn nweight_shuffle_grows_per_hop() {
        let spec = Workload::new(WorkloadKind::NWeight, InputSize::D1).job_spec();
        spec.validate().unwrap();
        let hops: Vec<f64> = spec
            .stages
            .iter()
            .filter(|s| s.name.starts_with("nw-hop"))
            .map(|s| s.write.mb())
            .collect();
        assert_eq!(hops.len(), 2);
        assert!(hops[1] > hops[0], "frontier must grow: {hops:?}");
        assert!(spec.peak_cache_mb > 0.0, "edge list is cached");
    }

    #[test]
    fn bayes_is_driver_heavy_with_shrinking_shuffles() {
        let spec = Workload::new(WorkloadKind::Bayes, InputSize::D1).job_spec();
        spec.validate().unwrap();
        assert!(spec.driver_work > 1.5, "model broadcast loads the driver");
        let shuffles: Vec<f64> = spec
            .stages
            .iter()
            .filter_map(|s| match s.write {
                DataSink::Shuffle { mb } => Some(mb),
                _ => None,
            })
            .collect();
        assert!(
            shuffles.windows(2).all(|w| w[1] < w[0]),
            "shuffles shrink: {shuffles:?}"
        );
    }

    #[test]
    fn extended_includes_paper_four() {
        let ext = WorkloadKind::extended();
        for k in WorkloadKind::all() {
            assert!(ext.contains(&k));
        }
        assert_eq!(ext.len(), 8);
    }

    #[test]
    fn all_stages_have_positive_work() {
        for w in Workload::all_pairs() {
            for s in w.job_spec().stages {
                assert!(s.cpu_per_mb > 0.0, "{w} {}", s.name);
                assert!(s.read.mb() >= 0.0);
                assert!((0.0..=1.0).contains(&s.ser_fraction));
            }
        }
    }
}
