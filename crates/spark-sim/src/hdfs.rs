//! HDFS namespace and block-placement model.
//!
//! The engine previously approximated data locality with a modular replica
//! rule; this module models the actual mechanics the HDFS knobs control:
//! files split into blocks by `dfs.blocksize`, replicas placed with the
//! default block-placement policy (first replica on the writer's node,
//! the rest spread across the remaining nodes), a NameNode whose RPC
//! handler pool (`dfs.namenode.handler.count`) queues metadata operations,
//! and DataNodes whose transfer-handler pools (`dfs.datanode.handler.count`)
//! bound concurrent block streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A stored file: an ordered list of blocks with replica locations.
#[derive(Clone, Debug, Serialize)]
pub struct HdfsFile {
    /// Total logical bytes (MB).
    pub size_mb: f64,
    /// Block size used at write time (MB).
    pub block_mb: u64,
    /// `blocks[i]` lists the node ids holding replicas of block `i`,
    /// first entry is the primary replica.
    pub blocks: Vec<Vec<usize>>,
}

impl HdfsFile {
    /// Number of blocks (= input splits for a reading stage).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Size of block `i` in MB (the final block may be short).
    pub fn block_size_mb(&self, i: usize) -> f64 {
        let full = self.block_mb as f64;
        if i + 1 == self.blocks.len() {
            let rem = self.size_mb - full * (self.blocks.len() - 1) as f64;
            if rem > 0.0 {
                rem
            } else {
                full
            }
        } else {
            full
        }
    }

    /// Is any replica of block `i` on `node`?
    pub fn is_local(&self, i: usize, node: usize) -> bool {
        self.blocks[i].contains(&node)
    }

    /// Fraction of blocks with at least one replica on `node`.
    pub fn locality_fraction(&self, node: usize) -> f64 {
        if self.blocks.is_empty() {
            return 1.0;
        }
        self.blocks.iter().filter(|b| b.contains(&node)).count() as f64 / self.blocks.len() as f64
    }
}

/// The HDFS namespace model for one simulated cluster.
///
/// ```
/// use spark_sim::Hdfs;
/// let hdfs = Hdfs::new(3, 10, 10);
/// let file = hdfs.place_file(1000.0, 128, 3, 42);
/// assert_eq!(file.num_blocks(), 8); // ceil(1000 MB / 128 MB)
/// // Replication 3 on a 3-node cluster means every block is local everywhere:
/// assert_eq!(file.locality_fraction(0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Hdfs {
    num_nodes: usize,
    /// NameNode RPC handler threads.
    pub nn_handlers: u32,
    /// DataNode transfer handler threads per node.
    pub dn_handlers: u32,
}

impl Hdfs {
    pub fn new(num_nodes: usize, nn_handlers: u32, dn_handlers: u32) -> Self {
        assert!(num_nodes > 0);
        Self {
            num_nodes,
            nn_handlers: nn_handlers.max(1),
            dn_handlers: dn_handlers.max(1),
        }
    }

    /// Lay out a file of `size_mb` with `block_mb` blocks and `replication`
    /// replicas using the default placement policy: primary replica
    /// round-robins over writer nodes, remaining replicas go to the next
    /// distinct nodes (a faithful 3-node reduction of rack-aware
    /// placement). `seed` randomizes the starting writer.
    pub fn place_file(&self, size_mb: f64, block_mb: u64, replication: u32, seed: u64) -> HdfsFile {
        let block_mb = block_mb.max(1);
        let n_blocks = ((size_mb / block_mb as f64).ceil() as usize).max(1);
        let repl = (replication as usize).clamp(1, self.num_nodes);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = rng.gen_range(0..self.num_nodes);
        let blocks = (0..n_blocks)
            .map(|b| {
                let primary = (start + b) % self.num_nodes;
                (0..repl).map(|r| (primary + r) % self.num_nodes).collect()
            })
            .collect();
        telemetry::inc("hdfs.files_placed", 1);
        telemetry::inc("hdfs.blocks_placed", n_blocks as u64);
        HdfsFile {
            size_mb,
            block_mb,
            blocks,
        }
    }

    /// Seconds of NameNode-side latency for a burst of `ops` metadata
    /// operations (open/addBlock/complete). The handler pool serves
    /// `nn_handlers` ops concurrently at ~1 ms each; excess ops queue.
    pub fn namenode_latency_s(&self, ops: u64) -> f64 {
        const OP_SERVICE_S: f64 = 0.001;
        let waves = (ops as f64 / self.nn_handlers as f64).ceil();
        waves * OP_SERVICE_S
    }

    /// Effective per-stream efficiency at a DataNode serving
    /// `concurrent_streams` block transfers: beyond the handler pool the
    /// streams queue, degrading with the square root of the overload (the
    /// disk is still shared fairly, but each request waits for a handler).
    pub fn datanode_stream_efficiency(&self, concurrent_streams: f64) -> f64 {
        if concurrent_streams <= self.dn_handlers as f64 {
            1.0
        } else {
            (self.dn_handlers as f64 / concurrent_streams).sqrt()
        }
    }

    /// Replication pipeline cost model for writing `mb` with `replication`
    /// replicas: the primary write is disk-bound; each extra replica adds a
    /// network hop that is pipelined with the disk write. Returns
    /// `(disk_mb, network_mb)` actually moved per node on the write path.
    pub fn write_amplification(&self, mb: f64, replication: u32) -> (f64, f64) {
        let repl = (replication as usize).clamp(1, self.num_nodes) as f64;
        (mb * repl, mb * (repl - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdfs() -> Hdfs {
        Hdfs::new(3, 10, 10)
    }

    #[test]
    fn block_count_matches_size() {
        let f = hdfs().place_file(1000.0, 128, 3, 1);
        assert_eq!(f.num_blocks(), 8); // ceil(1000/128)
        assert!((f.block_size_mb(7) - (1000.0 - 7.0 * 128.0)).abs() < 1e-9);
        assert_eq!(f.block_size_mb(0), 128.0);
    }

    #[test]
    fn replication_three_on_three_nodes_is_fully_local() {
        let f = hdfs().place_file(640.0, 64, 3, 2);
        for node in 0..3 {
            assert_eq!(f.locality_fraction(node), 1.0);
        }
    }

    #[test]
    fn replication_one_gives_one_third_locality() {
        let f = hdfs().place_file(12800.0, 128, 1, 3);
        for node in 0..3 {
            let frac = f.locality_fraction(node);
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "node {node}: {frac}");
        }
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let f = hdfs().place_file(500.0, 64, 3, 4);
        for b in &f.blocks {
            let mut sorted = b.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), b.len(), "duplicate replica placement");
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let h = Hdfs::new(2, 10, 10);
        let f = h.place_file(100.0, 64, 3, 5);
        assert!(f.blocks.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn namenode_latency_scales_with_handler_pool() {
        let slow = Hdfs::new(3, 10, 10);
        let fast = Hdfs::new(3, 100, 10);
        assert!(slow.namenode_latency_s(500) > fast.namenode_latency_s(500));
        assert_eq!(fast.namenode_latency_s(0), 0.0);
    }

    #[test]
    fn datanode_efficiency_degrades_under_overload() {
        let h = hdfs();
        assert_eq!(h.datanode_stream_efficiency(5.0), 1.0);
        assert_eq!(h.datanode_stream_efficiency(10.0), 1.0);
        let over = h.datanode_stream_efficiency(40.0);
        assert!(over < 1.0 && over > 0.0);
        assert!((over - 0.5).abs() < 1e-9); // sqrt(10/40)
    }

    #[test]
    fn write_amplification_counts_replicas() {
        let h = hdfs();
        let (disk, net) = h.write_amplification(100.0, 3);
        assert_eq!(disk, 300.0);
        assert_eq!(net, 200.0);
        let (disk1, net1) = h.write_amplification(100.0, 1);
        assert_eq!(disk1, 100.0);
        assert_eq!(net1, 0.0);
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let a = hdfs().place_file(512.0, 64, 2, 9);
        let b = hdfs().place_file(512.0, 64, 2, 9);
        assert_eq!(a.blocks, b.blocks);
        let c = hdfs().place_file(512.0, 64, 2, 10);
        // Different seed may rotate the placement (not guaranteed to
        // differ, but the layout must still be valid).
        assert_eq!(c.num_blocks(), a.num_blocks());
    }
}
