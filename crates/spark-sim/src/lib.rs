//! # spark-sim
//!
//! A discrete-event simulator of a Spark-on-YARN-on-HDFS cluster, built as
//! the evaluation substrate for the DeepCAT (ICPP '22) reproduction.
//!
//! The paper tunes 32 knobs of a real 3-node Spark cluster running HiBench
//! applications. This crate replaces that testbed: it models executor
//! negotiation ([`yarn`]), stage/task scheduling with locality, stragglers
//! and speculative execution ([`engine`]), unified-memory pressure (GC,
//! spill, cache eviction, container OOM kills), HDFS block sizing and
//! replication, and produces the same observables the paper's tuners
//! consume — execution time, per-node load averages and internal metrics.
//!
//! ```
//! use spark_sim::{Cluster, SparkEnv, Workload, WorkloadKind, InputSize};
//!
//! let mut env = SparkEnv::new(
//!     Cluster::cluster_a(),
//!     Workload::new(WorkloadKind::TeraSort, InputSize::D1),
//!     42,
//! );
//! let result = env.evaluate(&env.space().default_config().clone());
//! assert!(result.exec_time_s > 0.0);
//! ```

pub mod cluster;
pub mod constraints;
pub mod effective;
pub mod engine;
pub mod env;
pub mod export;
pub mod faults;
pub mod hdfs;
pub mod knobs;
pub mod metrics;
pub mod sensitivity;
pub mod synth;
pub mod workloads;
pub mod yarn;

pub use cluster::{Cluster, Node};
pub use constraints::{
    is_feasible, repair, validate, validate_action, Repair, Violation, DN_BUFFER_BUDGET_KB, RULES,
};
pub use effective::{Codec, Effective, Serializer};
pub use engine::{simulate, simulate_traced, FailureKind, SimOutcome, TaskTrace};
pub use env::{EvalResult, SparkEnv, FAILURE_PENALTY_FACTOR};
pub use export::{export_bundle, to_hadoop_site_xml, to_spark_defaults, ConfigBundle};
pub use faults::{Fault, FaultEvent, FaultPlan, InjectionSummary, PLAN_NAMES};
pub use hdfs::{Hdfs, HdfsFile};
pub use knobs::{idx, Component, Configuration, KnobDef, KnobKind, KnobSpace, KnobValue};
pub use metrics::RunMetrics;
pub use sensitivity::{morris_screening, KnobSensitivity, MorrisConfig};
pub use synth::{synthetic_job, SynthParams};
pub use workloads::{
    DagError, DataSink, DataSource, InputSize, JobSpec, StageSpec, TaskSizing, Workload,
    WorkloadKind,
};
pub use yarn::{negotiate, ExecutorPlan, NegotiationError};
