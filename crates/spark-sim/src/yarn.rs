//! YARN resource negotiation: turns the Spark resource knobs plus the YARN
//! NodeManager/scheduler knobs into a concrete executor layout.
//!
//! This reproduces the mechanics that make YARN knobs matter for Spark
//! performance: container sizing (heap + overhead, rounded to the increment
//! allocation), per-node packing limited by both NodeManager memory and
//! vcores, and the physical/virtual memory checks that can kill containers.

use crate::cluster::Cluster;
use crate::knobs::{idx, Configuration};
use serde::{Deserialize, Serialize};

/// Minimum executor-memory overhead YARN adds on top of the heap (MB).
pub const MIN_OVERHEAD_MB: u64 = 384;
/// Overhead fraction of the heap (`spark.yarn.executor.memoryOverhead`
/// default behaviour in Spark 2.x).
pub const OVERHEAD_FRACTION: f64 = 0.10;
/// Memory reserved per node for the OS, DataNode and NodeManager daemons.
pub const NODE_RESERVED_MB: u64 = 2048;

/// Concrete executor layout granted by YARN for one application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutorPlan {
    /// Executors actually granted (≤ requested instances).
    pub total_executors: u32,
    /// Granted executors on each node (node 0 also hosts the driver AM).
    pub executors_per_node: Vec<u32>,
    /// Memory of each executor container after rounding/clamping (MB).
    pub container_memory_mb: u64,
    /// Executor heap after any clipping against the max allocation (MB).
    pub executor_heap_mb: u64,
    /// Cores per executor after clamping to the NodeManager vcores.
    pub executor_cores: u32,
    /// Concurrent task slots per executor (`cores / task_cpus`).
    pub slots_per_executor: u32,
    /// Total concurrent task slots across the cluster.
    pub total_slots: u32,
    /// True if the Spark request had to be clipped to fit YARN limits
    /// (mirrors the paper's clipping of out-of-range recommendations).
    pub clipped: bool,
    /// Fraction of the container left above the heap (pmem headroom);
    /// small values make pmem-check kills likely for spiky workloads.
    pub pmem_headroom: f64,
    /// The configured virtual/physical ratio (low values risk vmem kills).
    pub vmem_pmem_ratio: f64,
    /// Whether the physical-memory check is enforced.
    pub pmem_check: bool,
}

/// Why a configuration cannot run at all.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationError {
    /// Not a single executor container fits on any node.
    NoContainerFits,
    /// `spark.task.cpus` exceeds the cores of an executor — no task can
    /// ever be scheduled.
    NoTaskSlots,
}

/// Round `v` up to a multiple of `inc` (≥ `inc`).
fn round_up(v: u64, inc: u64) -> u64 {
    let inc = inc.max(1);
    v.div_ceil(inc) * inc
}

/// Negotiate containers for the given configuration on the given cluster.
pub fn negotiate(
    config: &Configuration,
    cluster: &Cluster,
) -> Result<ExecutorPlan, NegotiationError> {
    let heap_req = config.get(idx::EXECUTOR_MEMORY_MB).as_i64().max(1) as u64;
    let instances = config.get(idx::EXECUTOR_INSTANCES).as_i64().max(1) as u32;
    let cores_req = config.get(idx::EXECUTOR_CORES).as_i64().max(1) as u32;
    let task_cpus = config.get(idx::TASK_CPUS).as_i64().max(1) as u32;
    let nm_mem = config.get(idx::NM_MEMORY_MB).as_i64().max(1) as u64;
    let nm_vcores = config.get(idx::NM_VCORES).as_i64().max(1) as u32;
    let min_alloc = config.get(idx::SCHED_MIN_ALLOC_MB).as_i64().max(1) as u64;
    let max_alloc = config.get(idx::SCHED_MAX_ALLOC_MB).as_i64().max(1) as u64;
    let inc_alloc = config.get(idx::SCHED_INC_ALLOC_MB).as_i64().max(1) as u64;
    let driver_mem = config.get(idx::DRIVER_MEMORY_MB).as_i64().max(1) as u64;
    let driver_cores = config.get(idx::DRIVER_CORES).as_i64().max(1) as u32;

    let mut clipped = false;

    // --- container sizing ---
    let overhead = |heap: u64| MIN_OVERHEAD_MB.max((heap as f64 * OVERHEAD_FRACTION) as u64);
    let mut heap = heap_req;
    let mut container = round_up(heap + overhead(heap), inc_alloc).max(min_alloc);
    if container > max_alloc {
        // Spark refuses to submit; operators respond by shrinking the
        // executor until it fits. The paper clips out-of-scope parameters
        // the same way.
        clipped = true;
        container = round_up(max_alloc, inc_alloc).min(max_alloc).max(min_alloc);
        if container > max_alloc {
            container = max_alloc;
        }
        let ovh = MIN_OVERHEAD_MB
            .max((container as f64 * OVERHEAD_FRACTION / (1.0 + OVERHEAD_FRACTION)) as u64);
        heap = container.saturating_sub(ovh);
        if heap < 256 {
            telemetry::inc("yarn.rejected", 1);
            return Err(NegotiationError::NoContainerFits);
        }
    }

    // --- cores ---
    let exec_cores = if cores_req > nm_vcores {
        clipped = true;
        nm_vcores
    } else {
        cores_req
    };
    if task_cpus > exec_cores {
        telemetry::inc("yarn.rejected", 1);
        return Err(NegotiationError::NoTaskSlots);
    }
    let slots_per_executor = exec_cores / task_cpus;

    // --- per-node packing ---
    // Driver AM container placed on node 0 first.
    let driver_container = round_up(driver_mem + overhead(driver_mem), inc_alloc).max(min_alloc);
    let mut per_node = Vec::with_capacity(cluster.num_nodes());
    let mut granted = 0u32;
    for (i, node) in cluster.nodes.iter().enumerate() {
        let eff_mem = nm_mem.min(node.memory_mb.saturating_sub(NODE_RESERVED_MB));
        let eff_vcores = nm_vcores.min(node.cores);
        let (mut mem_avail, mut cores_avail) = (eff_mem, eff_vcores);
        if i == 0 {
            mem_avail = mem_avail.saturating_sub(driver_container);
            cores_avail = cores_avail.saturating_sub(driver_cores.min(cores_avail));
        }
        let by_mem = if container == 0 {
            0
        } else {
            (mem_avail / container) as u32
        };
        let by_cores = cores_avail / exec_cores;
        let fit = by_mem.min(by_cores).min(instances.saturating_sub(granted));
        granted += fit;
        per_node.push(fit);
    }
    if granted == 0 {
        telemetry::inc("yarn.rejected", 1);
        return Err(NegotiationError::NoContainerFits);
    }

    let total_slots = granted * slots_per_executor;
    let pmem_headroom = (container.saturating_sub(heap)) as f64 / container as f64;

    telemetry::inc("yarn.negotiations", 1);
    if clipped {
        telemetry::inc("yarn.clipped", 1);
    }
    telemetry::set_gauge("yarn.total_slots", total_slots as f64);
    telemetry::set_gauge("yarn.total_executors", granted as f64);

    Ok(ExecutorPlan {
        total_executors: granted,
        executors_per_node: per_node,
        container_memory_mb: container,
        executor_heap_mb: heap,
        executor_cores: exec_cores,
        slots_per_executor,
        total_slots,
        clipped,
        pmem_headroom,
        vmem_pmem_ratio: config.get(idx::VMEM_PMEM_RATIO).as_f64(),
        pmem_check: config.get(idx::PMEM_CHECK).as_bool(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{KnobSpace, KnobValue};

    fn base_config() -> Configuration {
        KnobSpace::pipeline().default_config()
    }

    #[test]
    fn default_config_gets_two_small_executors() {
        let plan = negotiate(&base_config(), &Cluster::cluster_a()).unwrap();
        // Spark 2.x defaults: 2 executors × 1 core × 1 GB heap.
        assert_eq!(plan.total_executors, 2);
        assert_eq!(plan.executor_cores, 1);
        assert_eq!(plan.total_slots, 2);
        assert!(plan.executor_heap_mb >= 1024);
        assert!(!plan.clipped);
    }

    #[test]
    fn container_rounded_to_increment_and_min() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(600);
        cfg.values[idx::SCHED_INC_ALLOC_MB] = KnobValue::Int(512);
        cfg.values[idx::SCHED_MIN_ALLOC_MB] = KnobValue::Int(1024);
        let plan = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        // 600 + max(384, 60) = 984 → round to 1024, ≥ min_alloc 1024.
        assert_eq!(plan.container_memory_mb, 1024);
    }

    #[test]
    fn oversized_executor_is_clipped_to_max_alloc() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(12288);
        cfg.values[idx::SCHED_MAX_ALLOC_MB] = KnobValue::Int(4096);
        let plan = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        assert!(plan.clipped);
        assert!(plan.container_memory_mb <= 4096);
        assert!(plan.executor_heap_mb < 4096);
    }

    #[test]
    fn task_cpus_above_cores_is_unschedulable() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(2);
        cfg.values[idx::TASK_CPUS] = KnobValue::Int(4);
        assert_eq!(
            negotiate(&cfg, &Cluster::cluster_a()),
            Err(NegotiationError::NoTaskSlots)
        );
    }

    #[test]
    fn packing_is_limited_by_vcores() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(24);
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
        cfg.values[idx::NM_VCORES] = KnobValue::Int(8);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
        let plan = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        // 8 vcores / 4 cores = 2 per node (node 0 loses 1 driver core → 1),
        // memory allows far more.
        assert_eq!(plan.executors_per_node[1], 2);
        assert_eq!(plan.executors_per_node[2], 2);
        assert!(plan.executors_per_node[0] <= 2);
    }

    #[test]
    fn packing_is_limited_by_memory() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(24);
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(1);
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(6144);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
        cfg.values[idx::NM_VCORES] = KnobValue::Int(16);
        let plan = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        // container ≈ 6144 + 614 ≈ 7168 after rounding → 2 fit in 14336 − reserve.
        assert!(plan.executors_per_node[1] <= 2);
        assert!(plan.total_executors < 24);
    }

    #[test]
    fn node_zero_hosts_the_driver() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(24);
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(8);
        cfg.values[idx::NM_VCORES] = KnobValue::Int(16);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
        cfg.values[idx::DRIVER_MEMORY_MB] = KnobValue::Int(4096);
        cfg.values[idx::DRIVER_CORES] = KnobValue::Int(4);
        let plan = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        assert!(plan.executors_per_node[0] <= plan.executors_per_node[1]);
    }

    #[test]
    fn nothing_fits_is_an_error() {
        let mut cfg = base_config();
        // NodeManager offers 4 GB but containers need ~13.5 GB and cannot
        // shrink because max-alloc allows them.
        cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(12288);
        cfg.values[idx::SCHED_MAX_ALLOC_MB] = KnobValue::Int(14336);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(4096);
        assert_eq!(
            negotiate(&cfg, &Cluster::cluster_a()),
            Err(NegotiationError::NoContainerFits)
        );
    }

    #[test]
    fn pmem_headroom_reflects_overhead() {
        let plan = negotiate(&base_config(), &Cluster::cluster_a()).unwrap();
        assert!(plan.pmem_headroom > 0.0 && plan.pmem_headroom < 0.6);
    }

    #[test]
    fn cluster_b_grants_fewer_slots() {
        let mut cfg = base_config();
        cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(24);
        cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
        cfg.values[idx::NM_VCORES] = KnobValue::Int(16);
        cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
        let a = negotiate(&cfg, &Cluster::cluster_a()).unwrap();
        let b = negotiate(&cfg, &Cluster::cluster_b()).unwrap();
        assert!(b.total_slots < a.total_slots);
    }
}
