//! Synthetic workload generation: random — but structurally valid — stage
//! DAGs with randomized data volumes and resource intensities. Used for
//! robustness testing of tuners and fuzzing the execution engine beyond
//! the fixed HiBench-style workloads.

use crate::workloads::{DataSink, DataSource, JobSpec, StageSpec, TaskSizing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generator.
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Number of stages, excluding the output stage.
    pub stages: usize,
    /// Total HDFS input volume (MB) split across the source stages.
    pub input_mb: f64,
    /// Probability that a non-source stage has two parents (a join).
    pub join_probability: f64,
    /// Probability that a stage caches its output.
    pub cache_probability: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            stages: 5,
            input_mb: 2048.0,
            join_probability: 0.3,
            cache_probability: 0.2,
        }
    }
}

static STAGE_NAMES: [&str; 16] = [
    "syn-0", "syn-1", "syn-2", "syn-3", "syn-4", "syn-5", "syn-6", "syn-7", "syn-8", "syn-9",
    "syn-10", "syn-11", "syn-12", "syn-13", "syn-14", "syn-15",
];

/// Generate a random valid job. The same `(params, seed)` always produces
/// the same DAG.
pub fn synthetic_job(params: &SynthParams, seed: u64) -> JobSpec {
    let n = params.stages.clamp(1, STAGE_NAMES.len() - 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stages = Vec::with_capacity(n + 1);
    let mut dependencies: Vec<Vec<usize>> = Vec::with_capacity(n + 1);
    let mut peak_cache_mb = 0.0;
    // Between 1 and 2 source stages reading the input.
    let sources = if n >= 3 && rng.gen_bool(0.4) { 2 } else { 1 };
    for i in 0..n {
        let is_source = i < sources;
        let read = if is_source {
            DataSource::Hdfs {
                mb: params.input_mb / sources as f64,
            }
        } else {
            let mb = params.input_mb * (0.1 + 0.7 * rng.gen::<f64>());
            DataSource::Shuffle { mb }
        };
        let out_mb = read.mb() * (0.05 + 0.9 * rng.gen::<f64>());
        let write = if i + 1 == n {
            DataSink::Hdfs { mb: out_mb }
        } else {
            DataSink::Shuffle { mb: out_mb }
        };
        let cache_out_mb = if rng.gen_bool(params.cache_probability) {
            let c = read.mb() * (0.5 + rng.gen::<f64>());
            peak_cache_mb += c;
            c
        } else {
            0.0
        };
        stages.push(StageSpec {
            name: STAGE_NAMES[i],
            read,
            write,
            sizing: if is_source {
                TaskSizing::ByInputSplits
            } else {
                TaskSizing::ByParallelism
            },
            cpu_per_mb: 0.02 + 0.06 * rng.gen::<f64>(),
            ser_fraction: 0.2 + 0.4 * rng.gen::<f64>(),
            sort_like: rng.gen_bool(0.25),
            cache_out_mb,
            exec_mem_per_input_mb: 0.3 + 1.0 * rng.gen::<f64>(),
            native_spike_mb: 80.0 + 200.0 * rng.gen::<f64>(),
        });
        let deps = if is_source {
            Vec::new()
        } else if i >= 2 && rng.gen_bool(params.join_probability) {
            // Join two distinct earlier stages.
            let a = rng.gen_range(0..i);
            let mut b = rng.gen_range(0..i);
            if a == b {
                b = (b + 1) % i;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            if lo == hi {
                vec![lo]
            } else {
                vec![lo, hi]
            }
        } else {
            vec![rng.gen_range(0..i)]
        };
        dependencies.push(deps);
    }
    // Final collect stage depending on every sink-less leaf.
    let leaves: Vec<usize> = (0..n)
        .filter(|&i| !dependencies.iter().any(|d| d.contains(&i)))
        .collect();
    stages.push(StageSpec {
        name: STAGE_NAMES[n],
        read: DataSource::Shuffle {
            mb: params.input_mb * 0.05,
        },
        write: DataSink::Driver,
        sizing: TaskSizing::Fixed(8),
        cpu_per_mb: 0.02,
        ser_fraction: 0.3,
        sort_like: false,
        cache_out_mb: 0.0,
        exec_mem_per_input_mb: 0.3,
        native_spike_mb: 80.0,
    });
    dependencies.push(if leaves.is_empty() {
        vec![n - 1]
    } else {
        leaves
    });

    let job = JobSpec {
        stages,
        dependencies,
        peak_cache_mb,
        driver_work: 1.0,
    };
    debug_assert!(job.validate().is_ok());
    job
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::engine::simulate;
    use crate::knobs::KnobSpace;

    #[test]
    fn generated_jobs_are_valid_dags() {
        for seed in 0..50 {
            let job = synthetic_job(&SynthParams::default(), seed);
            job.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(job.stages.len() >= 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SynthParams::default();
        let a = synthetic_job(&p, 7);
        let b = synthetic_job(&p, 7);
        assert_eq!(a.dependencies, b.dependencies);
        assert_eq!(a.stages.len(), b.stages.len());
    }

    #[test]
    fn joins_appear_with_high_probability_setting() {
        let p = SynthParams {
            stages: 8,
            join_probability: 1.0,
            ..Default::default()
        };
        let found = (0..10).any(|seed| {
            synthetic_job(&p, seed)
                .dependencies
                .iter()
                .any(|d| d.len() == 2)
        });
        assert!(found, "join probability 1.0 must produce joins");
    }

    #[test]
    fn generated_jobs_simulate_without_panicking() {
        let space = KnobSpace::pipeline();
        let cfg = space.default_config();
        for seed in 0..20 {
            let job = synthetic_job(&SynthParams::default(), seed);
            let out = simulate(&Cluster::cluster_a(), &cfg, &job, seed);
            assert!(
                out.duration_s.is_finite() && out.duration_s > 0.0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cache_probability_zero_means_no_cache() {
        let p = SynthParams {
            cache_probability: 0.0,
            ..Default::default()
        };
        for seed in 0..10 {
            assert_eq!(synthetic_job(&p, seed).peak_cache_mb, 0.0);
        }
    }

    #[test]
    fn stage_count_is_clamped() {
        let p = SynthParams {
            stages: 100,
            ..Default::default()
        };
        let job = synthetic_job(&p, 1);
        assert!(job.stages.len() <= STAGE_NAMES.len());
    }
}
