//! The 32-parameter configuration space of the Spark/YARN/HDFS pipeline.
//!
//! This mirrors Table 2 of the DeepCAT paper: 20 Spark parameters (including
//! the Spark-on-YARN connector knobs), 7 YARN parameters and 5 HDFS
//! parameters. Tuners act in a normalized `[0,1]^32` action space; the
//! [`KnobSpace`] maps actions to concrete [`Configuration`]s and back.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which framework in the pipeline a knob belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    Spark,
    Yarn,
    Hdfs,
}

/// The value domain of a knob.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum KnobKind {
    /// Integer in `[lo, hi]`; `log` selects log-uniform mapping from the
    /// normalized axis (for ranges spanning orders of magnitude).
    Int { lo: i64, hi: i64, log: bool },
    /// Float in `[lo, hi]`.
    Float { lo: f64, hi: f64 },
    /// Boolean; normalized values ≥ 0.5 map to `true`.
    Bool,
    /// Categorical with named choices; the normalized axis is split into
    /// equal bins.
    Categorical { choices: Vec<&'static str> },
}

/// A single tunable parameter.
#[derive(Clone, Debug, Serialize)]
pub struct KnobDef {
    /// Fully-qualified parameter name, e.g. `spark.executor.memory`.
    pub name: &'static str,
    pub component: Component,
    pub kind: KnobKind,
    /// The framework's out-of-the-box default.
    pub default: KnobValue,
    /// Unit for display (MB, KB, s, …).
    pub unit: &'static str,
    /// One-line description of what the knob controls.
    pub description: &'static str,
}

/// A concrete knob value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum KnobValue {
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Index into the categorical choices.
    Cat(usize),
}

impl KnobValue {
    pub fn as_i64(&self) -> i64 {
        match *self {
            KnobValue::Int(v) => v,
            KnobValue::Float(v) => v as i64,
            KnobValue::Bool(b) => b as i64,
            KnobValue::Cat(c) => c as i64,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            KnobValue::Int(v) => v as f64,
            KnobValue::Float(v) => v,
            KnobValue::Bool(b) => b as u8 as f64,
            KnobValue::Cat(c) => c as f64,
        }
    }

    pub fn as_bool(&self) -> bool {
        match *self {
            KnobValue::Bool(b) => b,
            KnobValue::Int(v) => v != 0,
            KnobValue::Float(v) => v != 0.0,
            KnobValue::Cat(c) => c != 0,
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Float(v) => write!(f, "{v:.3}"),
            KnobValue::Bool(b) => write!(f, "{b}"),
            KnobValue::Cat(c) => write!(f, "#{c}"),
        }
    }
}

/// A full assignment of all 32 knobs, aligned with [`KnobSpace::defs`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    pub values: Vec<KnobValue>,
}

impl Configuration {
    /// Look up a knob by index.
    pub fn get(&self, idx: usize) -> &KnobValue {
        &self.values[idx]
    }
}

/// Stable indices of every knob, so the simulator can read semantic fields
/// without string lookups. The order here *is* the action-vector order.
pub mod idx {
    // --- Spark (20) ---
    pub const EXECUTOR_CORES: usize = 0;
    pub const EXECUTOR_MEMORY_MB: usize = 1;
    pub const EXECUTOR_INSTANCES: usize = 2;
    pub const DEFAULT_PARALLELISM: usize = 3;
    pub const MEMORY_FRACTION: usize = 4;
    pub const MEMORY_STORAGE_FRACTION: usize = 5;
    pub const SHUFFLE_COMPRESS: usize = 6;
    pub const SHUFFLE_SPILL_COMPRESS: usize = 7;
    pub const SHUFFLE_FILE_BUFFER_KB: usize = 8;
    pub const REDUCER_MAX_SIZE_IN_FLIGHT_MB: usize = 9;
    pub const SERIALIZER: usize = 10;
    pub const RDD_COMPRESS: usize = 11;
    pub const IO_COMPRESSION_CODEC: usize = 12;
    pub const LOCALITY_WAIT_S: usize = 13;
    pub const SPECULATION: usize = 14;
    pub const TASK_CPUS: usize = 15;
    pub const BROADCAST_BLOCK_SIZE_MB: usize = 16;
    pub const DRIVER_MEMORY_MB: usize = 17;
    pub const DRIVER_CORES: usize = 18;
    pub const SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD: usize = 19;
    // --- YARN (7) ---
    pub const NM_MEMORY_MB: usize = 20;
    pub const NM_VCORES: usize = 21;
    pub const SCHED_MIN_ALLOC_MB: usize = 22;
    pub const SCHED_MAX_ALLOC_MB: usize = 23;
    pub const SCHED_INC_ALLOC_MB: usize = 24;
    pub const VMEM_PMEM_RATIO: usize = 25;
    pub const PMEM_CHECK: usize = 26;
    // --- HDFS (5) ---
    pub const DFS_BLOCK_SIZE_MB: usize = 27;
    pub const DFS_REPLICATION: usize = 28;
    pub const NN_HANDLER_COUNT: usize = 29;
    pub const DN_HANDLER_COUNT: usize = 30;
    pub const IO_FILE_BUFFER_KB: usize = 31;
}

/// The knob space: definitions plus normalize/denormalize mappings.
#[derive(Clone, Debug, Serialize)]
pub struct KnobSpace {
    defs: Vec<KnobDef>,
}

impl Default for KnobSpace {
    fn default() -> Self {
        Self::pipeline()
    }
}

impl KnobSpace {
    /// The full 32-knob Spark/YARN/HDFS pipeline space from the paper.
    ///
    /// ```
    /// use spark_sim::{KnobSpace, Component};
    /// let space = KnobSpace::pipeline();
    /// assert_eq!(space.len(), 32);
    /// assert_eq!(space.count_by_component(Component::Spark), 20);
    /// // Tuners act in [0,1]^32; the space maps actions to real knobs:
    /// let config = space.denormalize(&vec![0.5; 32]);
    /// assert_eq!(config.values.len(), 32);
    /// ```
    pub fn pipeline() -> Self {
        use Component::*;
        use KnobKind::*;
        use KnobValue as V;
        let defs = vec![
            // ---------------- Spark (20) ----------------
            KnobDef {
                name: "spark.executor.cores",
                component: Spark,
                kind: Int {
                    lo: 1,
                    hi: 8,
                    log: false,
                },
                default: V::Int(1),
                unit: "cores",
                description: "CPU cores per executor",
            },
            KnobDef {
                name: "spark.executor.memory",
                component: Spark,
                kind: Int {
                    lo: 512,
                    hi: 12288,
                    log: true,
                },
                default: V::Int(1024),
                unit: "MB",
                description: "Heap memory per executor",
            },
            KnobDef {
                name: "spark.executor.instances",
                component: Spark,
                kind: Int {
                    lo: 1,
                    hi: 24,
                    log: false,
                },
                default: V::Int(2),
                unit: "executors",
                description: "Number of executors requested from YARN",
            },
            KnobDef {
                name: "spark.default.parallelism",
                component: Spark,
                kind: Int {
                    lo: 8,
                    hi: 512,
                    log: true,
                },
                default: V::Int(16),
                unit: "partitions",
                description: "Default number of partitions for shuffles",
            },
            KnobDef {
                name: "spark.memory.fraction",
                component: Spark,
                kind: Float { lo: 0.3, hi: 0.9 },
                default: V::Float(0.6),
                unit: "",
                description: "Fraction of heap used for execution and storage",
            },
            KnobDef {
                name: "spark.memory.storageFraction",
                component: Spark,
                kind: Float { lo: 0.1, hi: 0.9 },
                default: V::Float(0.5),
                unit: "",
                description: "Fraction of spark memory immune to eviction (storage)",
            },
            KnobDef {
                name: "spark.shuffle.compress",
                component: Spark,
                kind: Bool,
                default: V::Bool(true),
                unit: "",
                description: "Compress map output files",
            },
            KnobDef {
                name: "spark.shuffle.spill.compress",
                component: Spark,
                kind: Bool,
                default: V::Bool(true),
                unit: "",
                description: "Compress data spilled during shuffles",
            },
            KnobDef {
                name: "spark.shuffle.file.buffer",
                component: Spark,
                kind: Int {
                    lo: 16,
                    hi: 512,
                    log: true,
                },
                default: V::Int(32),
                unit: "KB",
                description: "In-memory buffer per shuffle file output stream",
            },
            KnobDef {
                name: "spark.reducer.maxSizeInFlight",
                component: Spark,
                kind: Int {
                    lo: 8,
                    hi: 256,
                    log: true,
                },
                default: V::Int(48),
                unit: "MB",
                description: "Max map output fetched concurrently per reduce task",
            },
            KnobDef {
                name: "spark.serializer",
                component: Spark,
                kind: Categorical {
                    choices: vec!["java", "kryo"],
                },
                default: V::Cat(0),
                unit: "",
                description: "Object serialization implementation",
            },
            KnobDef {
                name: "spark.rdd.compress",
                component: Spark,
                kind: Bool,
                default: V::Bool(false),
                unit: "",
                description: "Compress serialized cached RDD partitions",
            },
            KnobDef {
                name: "spark.io.compression.codec",
                component: Spark,
                kind: Categorical {
                    choices: vec!["lz4", "lzf", "snappy"],
                },
                default: V::Cat(0),
                unit: "",
                description: "Codec for shuffle/RDD/broadcast compression",
            },
            KnobDef {
                name: "spark.locality.wait",
                component: Spark,
                kind: Float { lo: 0.0, hi: 10.0 },
                default: V::Float(3.0),
                unit: "s",
                description: "Wait before scheduling a task at a worse locality level",
            },
            KnobDef {
                name: "spark.speculation",
                component: Spark,
                kind: Bool,
                default: V::Bool(false),
                unit: "",
                description: "Re-launch slow tasks speculatively",
            },
            KnobDef {
                name: "spark.task.cpus",
                component: Spark,
                kind: Int {
                    lo: 1,
                    hi: 4,
                    log: false,
                },
                default: V::Int(1),
                unit: "cores",
                description: "CPU cores reserved per task",
            },
            KnobDef {
                name: "spark.broadcast.blockSize",
                component: Spark,
                kind: Int {
                    lo: 1,
                    hi: 16,
                    log: false,
                },
                default: V::Int(4),
                unit: "MB",
                description: "TorrentBroadcast block size",
            },
            KnobDef {
                name: "spark.driver.memory",
                component: Spark,
                kind: Int {
                    lo: 512,
                    hi: 8192,
                    log: true,
                },
                default: V::Int(1024),
                unit: "MB",
                description: "Driver heap size",
            },
            KnobDef {
                name: "spark.driver.cores",
                component: Spark,
                kind: Int {
                    lo: 1,
                    hi: 8,
                    log: false,
                },
                default: V::Int(1),
                unit: "cores",
                description: "Driver CPU cores",
            },
            KnobDef {
                name: "spark.shuffle.sort.bypassMergeThreshold",
                component: Spark,
                kind: Int {
                    lo: 50,
                    hi: 800,
                    log: true,
                },
                default: V::Int(200),
                unit: "partitions",
                description: "Below this many reduce partitions, skip merge-sort",
            },
            // ---------------- YARN (7) ----------------
            KnobDef {
                name: "yarn.nodemanager.resource.memory-mb",
                component: Yarn,
                kind: Int {
                    lo: 4096,
                    hi: 14336,
                    log: false,
                },
                default: V::Int(8192),
                unit: "MB",
                description: "Memory a NodeManager offers to containers",
            },
            KnobDef {
                name: "yarn.nodemanager.resource.cpu-vcores",
                component: Yarn,
                kind: Int {
                    lo: 4,
                    hi: 16,
                    log: false,
                },
                default: V::Int(8),
                unit: "vcores",
                description: "Vcores a NodeManager offers to containers",
            },
            KnobDef {
                name: "yarn.scheduler.minimum-allocation-mb",
                component: Yarn,
                kind: Int {
                    lo: 256,
                    hi: 2048,
                    log: true,
                },
                default: V::Int(1024),
                unit: "MB",
                description: "Smallest container the scheduler grants",
            },
            KnobDef {
                name: "yarn.scheduler.maximum-allocation-mb",
                component: Yarn,
                kind: Int {
                    lo: 2048,
                    hi: 14336,
                    log: false,
                },
                default: V::Int(8192),
                unit: "MB",
                description: "Largest container the scheduler grants",
            },
            KnobDef {
                name: "yarn.scheduler.increment-allocation-mb",
                component: Yarn,
                kind: Int {
                    lo: 128,
                    hi: 1024,
                    log: true,
                },
                default: V::Int(512),
                unit: "MB",
                description: "Container memory rounding granularity",
            },
            KnobDef {
                name: "yarn.nodemanager.vmem-pmem-ratio",
                component: Yarn,
                kind: Float { lo: 1.5, hi: 5.0 },
                default: V::Float(2.1),
                unit: "",
                description: "Allowed virtual-to-physical memory ratio per container",
            },
            KnobDef {
                name: "yarn.nodemanager.pmem-check-enabled",
                component: Yarn,
                kind: Bool,
                default: V::Bool(true),
                unit: "",
                description: "Kill containers that exceed physical memory",
            },
            // ---------------- HDFS (5) ----------------
            KnobDef {
                name: "dfs.blocksize",
                component: Hdfs,
                kind: Int {
                    lo: 32,
                    hi: 512,
                    log: true,
                },
                default: V::Int(128),
                unit: "MB",
                description: "HDFS block size (drives input split count)",
            },
            KnobDef {
                name: "dfs.replication",
                component: Hdfs,
                kind: Int {
                    lo: 1,
                    hi: 3,
                    log: false,
                },
                default: V::Int(3),
                unit: "replicas",
                description: "Block replication factor",
            },
            KnobDef {
                name: "dfs.namenode.handler.count",
                component: Hdfs,
                kind: Int {
                    lo: 10,
                    hi: 200,
                    log: true,
                },
                default: V::Int(10),
                unit: "threads",
                description: "NameNode RPC handler threads",
            },
            KnobDef {
                name: "dfs.datanode.handler.count",
                component: Hdfs,
                kind: Int {
                    lo: 10,
                    hi: 128,
                    log: true,
                },
                default: V::Int(10),
                unit: "threads",
                description: "DataNode RPC handler threads",
            },
            KnobDef {
                name: "io.file.buffer.size",
                component: Hdfs,
                kind: Int {
                    lo: 4,
                    hi: 1024,
                    log: true,
                },
                default: V::Int(64),
                unit: "KB",
                description: "Buffer size for HDFS sequence-file IO",
            },
        ];
        let space = Self { defs };
        debug_assert_eq!(space.len(), 32);
        space
    }

    pub fn defs(&self) -> &[KnobDef] {
        &self.defs
    }

    /// Number of knobs (the action dimension).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// How many knobs belong to `component` — Table 2 of the paper.
    pub fn count_by_component(&self, component: Component) -> usize {
        self.defs
            .iter()
            .filter(|d| d.component == component)
            .count()
    }

    /// The framework-default configuration (what the paper's "default"
    /// baseline runs with).
    pub fn default_config(&self) -> Configuration {
        Configuration {
            values: self.defs.iter().map(|d| d.default.clone()).collect(),
        }
    }

    /// Map a normalized action in `[0,1]^n` to a concrete configuration.
    /// Components outside `[0,1]` are clamped (the paper clips actions that
    /// fall outside the valid range of the target environment).
    pub fn denormalize(&self, action: &[f64]) -> Configuration {
        assert_eq!(action.len(), self.defs.len(), "action dimension mismatch");
        let values = self
            .defs
            .iter()
            .zip(action)
            .map(|(def, &raw)| {
                let x = raw.clamp(0.0, 1.0);
                match &def.kind {
                    KnobKind::Int { lo, hi, log } => {
                        let v = if *log {
                            let (l, h) = ((*lo as f64).ln(), (*hi as f64).ln());
                            (l + x * (h - l)).exp()
                        } else {
                            *lo as f64 + x * (*hi - *lo) as f64
                        };
                        KnobValue::Int((v.round() as i64).clamp(*lo, *hi))
                    }
                    KnobKind::Float { lo, hi } => {
                        KnobValue::Float((lo + x * (hi - lo)).clamp(*lo, *hi))
                    }
                    KnobKind::Bool => KnobValue::Bool(x >= 0.5),
                    KnobKind::Categorical { choices } => {
                        let n = choices.len();
                        let c = ((x * n as f64) as usize).min(n - 1);
                        KnobValue::Cat(c)
                    }
                }
            })
            .collect();
        Configuration { values }
    }

    /// Inverse of [`denormalize`](Self::denormalize): map a configuration to
    /// the center of its normalized pre-image.
    pub fn normalize(&self, config: &Configuration) -> Vec<f64> {
        assert_eq!(
            config.values.len(),
            self.defs.len(),
            "config dimension mismatch"
        );
        self.defs
            .iter()
            .zip(&config.values)
            .map(|(def, value)| match (&def.kind, value) {
                (KnobKind::Int { lo, hi, log }, v) => {
                    let v = v.as_i64().clamp(*lo, *hi) as f64;
                    if *log {
                        let (l, h) = ((*lo as f64).ln(), (*hi as f64).ln());
                        ((v.ln() - l) / (h - l)).clamp(0.0, 1.0)
                    } else if hi == lo {
                        0.0
                    } else {
                        (v - *lo as f64) / (*hi - *lo) as f64
                    }
                }
                (KnobKind::Float { lo, hi }, v) => ((v.as_f64() - lo) / (hi - lo)).clamp(0.0, 1.0),
                (KnobKind::Bool, v) => {
                    if v.as_bool() {
                        0.75
                    } else {
                        0.25
                    }
                }
                (KnobKind::Categorical { choices }, v) => {
                    let n = choices.len() as f64;
                    (v.as_i64() as f64 + 0.5) / n
                }
            })
            .collect()
    }

    /// Uniformly random action vector.
    pub fn random_action(&self, rng: &mut impl rand::Rng) -> Vec<f64> {
        (0..self.defs.len()).map(|_| rng.gen::<f64>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table2_knob_counts() {
        let s = KnobSpace::pipeline();
        assert_eq!(s.len(), 32);
        assert_eq!(s.count_by_component(Component::Spark), 20);
        assert_eq!(s.count_by_component(Component::Yarn), 7);
        assert_eq!(s.count_by_component(Component::Hdfs), 5);
    }

    #[test]
    fn index_constants_match_names() {
        let s = KnobSpace::pipeline();
        assert_eq!(
            s.defs()[idx::EXECUTOR_MEMORY_MB].name,
            "spark.executor.memory"
        );
        assert_eq!(s.defs()[idx::SERIALIZER].name, "spark.serializer");
        assert_eq!(
            s.defs()[idx::PMEM_CHECK].name,
            "yarn.nodemanager.pmem-check-enabled"
        );
        assert_eq!(s.defs()[idx::IO_FILE_BUFFER_KB].name, "io.file.buffer.size");
    }

    #[test]
    fn default_values_in_range_and_round_trip() {
        let s = KnobSpace::pipeline();
        let dflt = s.default_config();
        let norm = s.normalize(&dflt);
        assert!(norm.iter().all(|v| (0.0..=1.0).contains(v)), "{norm:?}");
        let back = s.denormalize(&norm);
        // Round trip must reproduce the default exactly (the normalized
        // center must land in the same bin / rounded integer).
        for (i, (a, b)) in dflt.values.iter().zip(&back.values).enumerate() {
            match (a, b) {
                (KnobValue::Float(x), KnobValue::Float(y)) => {
                    assert!((x - y).abs() < 1e-9, "knob {i}")
                }
                _ => assert_eq!(a, b, "knob {i}: {}", s.defs()[i].name),
            }
        }
    }

    #[test]
    fn denormalize_clamps_out_of_range_actions() {
        let s = KnobSpace::pipeline();
        let lo = s.denormalize(&vec![-3.0; 32]);
        let hi = s.denormalize(&vec![7.0; 32]);
        assert_eq!(lo.get(idx::EXECUTOR_CORES).as_i64(), 1);
        assert_eq!(hi.get(idx::EXECUTOR_CORES).as_i64(), 8);
        assert_eq!(hi.get(idx::DFS_REPLICATION).as_i64(), 3);
    }

    #[test]
    fn extreme_actions_hit_bounds() {
        let s = KnobSpace::pipeline();
        let lo = s.denormalize(&vec![0.0; 32]);
        let hi = s.denormalize(&vec![1.0; 32]);
        for (i, def) in s.defs().iter().enumerate() {
            if let KnobKind::Int { lo: l, hi: h, .. } = def.kind {
                assert_eq!(lo.get(i).as_i64(), l, "{}", def.name);
                assert_eq!(hi.get(i).as_i64(), h, "{}", def.name);
            }
        }
    }

    #[test]
    fn log_scaling_spreads_small_values() {
        let s = KnobSpace::pipeline();
        // At x = 0.5, a log knob should land at the geometric mean.
        let mut action = s.normalize(&s.default_config());
        action[idx::EXECUTOR_MEMORY_MB] = 0.5;
        let cfg = s.denormalize(&action);
        let geo = ((512f64.ln() + 12288f64.ln()) / 2.0).exp();
        let v = cfg.get(idx::EXECUTOR_MEMORY_MB).as_i64() as f64;
        assert!((v - geo).abs() / geo < 0.01, "{v} vs {geo}");
    }

    #[test]
    fn random_actions_denormalize_to_valid_configs() {
        let s = KnobSpace::pipeline();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a = s.random_action(&mut rng);
            let cfg = s.denormalize(&a);
            for (def, v) in s.defs().iter().zip(&cfg.values) {
                match (&def.kind, v) {
                    (KnobKind::Int { lo, hi, .. }, KnobValue::Int(x)) => {
                        assert!(x >= lo && x <= hi)
                    }
                    (KnobKind::Float { lo, hi }, KnobValue::Float(x)) => {
                        assert!(x >= lo && x <= hi)
                    }
                    (KnobKind::Bool, KnobValue::Bool(_)) => {}
                    (KnobKind::Categorical { choices }, KnobValue::Cat(c)) => {
                        assert!(*c < choices.len())
                    }
                    other => panic!("kind/value mismatch {other:?}"),
                }
            }
        }
    }
}
