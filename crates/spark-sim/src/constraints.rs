//! Declarative feasibility constraints over the 32-knob space.
//!
//! The knob ranges in [`crate::knobs`] are per-knob boxes; feasibility is
//! *cross-knob*. An action with every coordinate in range can still encode
//! a configuration YARN refuses outright (executor container larger than
//! the NodeManager offer, `spark.task.cpus` above the executor cores) or
//! one that starves a daemon (DataNode handler threads × IO buffer blowing
//! the DataNode heap budget). The simulator prices such runs as expensive
//! failures; a production cluster prices them as outages.
//!
//! This module is the *model* half of the PR-5 guardrail layer: a fixed
//! list of named rules ([`RULES`]), a [`validate`] pass reporting every
//! violated rule, and a [`repair`] projection mapping an arbitrary action
//! to a nearby feasible point of `[0,1]^32`. Repair is **total** (every
//! input, even non-finite, yields a feasible output) and **idempotent**
//! (`repair(repair(a)) == repair(a)`); both properties are enforced by
//! proptests. The rules only ever *shrink* resource requests, so a
//! feasible action passes through bit-unchanged.
//!
//! The rules mirror [`crate::yarn::negotiate`] arithmetic exactly
//! (overhead, rounding to the increment allocation, minimum allocation),
//! so "feasible" here means "the simulated resource managers will not
//! reject or silently clip this configuration".

use crate::knobs::{idx, Configuration, KnobKind, KnobSpace, KnobValue};
use crate::yarn::{MIN_OVERHEAD_MB, OVERHEAD_FRACTION};
use serde::{Deserialize, Serialize};

/// DataNode heap budget shared by RPC handler IO buffers (KB). With
/// `dfs.datanode.handler.count` handlers each holding an
/// `io.file.buffer.size` buffer, the product must stay within a 64 MB
/// slice of the DataNode daemon heap or the DataNode starts promoting
/// full GCs under load.
pub const DN_BUFFER_BUDGET_KB: u64 = 64 * 1024;

/// Every rule name, in the order [`validate`] reports and [`repair`]
/// applies them. The order matters for repair: executor cores are clamped
/// before `task.cpus` is checked against them, and the NodeManager memory
/// bound is restored before the scheduler max-allocation bound.
pub const RULES: [&str; 6] = [
    "cpu.cores_within_nm_vcores",
    "cpu.task_cpus_within_cores",
    "mem.executor_fits_nm",
    "mem.executor_within_max_alloc",
    "mem.driver_fits_nm",
    "hdfs.datanode_buffer_budget",
];

/// One violated feasibility rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Name from [`RULES`].
    pub rule: &'static str,
    /// Deterministic human-readable detail (integer quantities only).
    pub detail: String,
}

/// Result of projecting an action onto the feasible region.
#[derive(Clone, Debug, PartialEq)]
pub struct Repair {
    /// The feasible action: identical to the (clamped, sanitized) input
    /// when no rule fired.
    pub action: Vec<f64>,
    /// Rules whose repair was applied, in [`RULES`] order.
    pub applied: Vec<&'static str>,
}

impl Repair {
    /// Did any feasibility rule rewrite the action?
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// YARN's overhead on top of a container heap — same arithmetic as
/// [`crate::yarn::negotiate`].
fn overhead(heap_mb: u64) -> u64 {
    MIN_OVERHEAD_MB.max((heap_mb as f64 * OVERHEAD_FRACTION) as u64)
}

/// Container granted for a heap request: heap + overhead, rounded up to
/// the increment allocation, at least the minimum allocation.
fn container(heap_mb: u64, min_alloc: u64, inc_alloc: u64) -> u64 {
    let inc = inc_alloc.max(1);
    ((heap_mb + overhead(heap_mb)).div_ceil(inc) * inc).max(min_alloc)
}

fn as_u64(cfg: &Configuration, i: usize) -> u64 {
    cfg.get(i).as_i64().max(0) as u64
}

/// Largest heap in `[lo, hi]` whose container fits within `target_mb`,
/// found by binary search on the exact (monotone) container function.
/// Returns `None` only when even `lo` does not fit — impossible for the
/// pipeline knob ranges (see the `repair_is_total` proptest).
fn max_heap_fitting(
    target_mb: u64,
    min_alloc: u64,
    inc_alloc: u64,
    lo: i64,
    hi: i64,
) -> Option<i64> {
    if container(lo.max(0) as u64, min_alloc, inc_alloc) > target_mb {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        if container(mid.max(0) as u64, min_alloc, inc_alloc) <= target_mb {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The `[lo, hi]` range of an integer knob.
fn int_range(space: &KnobSpace, i: usize) -> (i64, i64) {
    match space.defs()[i].kind {
        KnobKind::Int { lo, hi, .. } => (lo, hi),
        // Every knob this module touches is Int by construction of
        // `KnobSpace::pipeline`; a mismatch is a programming error.
        // PANIC-SAFETY: failing loudly beats silently mis-repairing.
        _ => panic!("constraint rule addresses non-integer knob {i}"),
    }
}

/// Check every feasibility rule against a concrete configuration.
/// Returns the violated rules in [`RULES`] order; an empty vector means
/// the configuration is feasible.
pub fn validate(config: &Configuration) -> Vec<Violation> {
    let mut out = Vec::new();
    let cores = as_u64(config, idx::EXECUTOR_CORES);
    let task_cpus = as_u64(config, idx::TASK_CPUS);
    let heap = as_u64(config, idx::EXECUTOR_MEMORY_MB);
    let driver = as_u64(config, idx::DRIVER_MEMORY_MB);
    let nm_mem = as_u64(config, idx::NM_MEMORY_MB);
    let nm_vcores = as_u64(config, idx::NM_VCORES);
    let min_alloc = as_u64(config, idx::SCHED_MIN_ALLOC_MB);
    let max_alloc = as_u64(config, idx::SCHED_MAX_ALLOC_MB);
    let inc_alloc = as_u64(config, idx::SCHED_INC_ALLOC_MB);
    let dn_handlers = as_u64(config, idx::DN_HANDLER_COUNT);
    let io_buffer = as_u64(config, idx::IO_FILE_BUFFER_KB);

    if cores > nm_vcores {
        out.push(Violation {
            rule: RULES[0],
            detail: format!("executor cores {cores} > NodeManager vcores {nm_vcores}"),
        });
    }
    // Task slots are checked against the cores YARN would actually grant
    // (clipped to the NodeManager vcores), matching the negotiation.
    let eff_cores = cores.min(nm_vcores).max(1);
    if task_cpus > eff_cores {
        out.push(Violation {
            rule: RULES[1],
            detail: format!("task cpus {task_cpus} > granted executor cores {eff_cores}"),
        });
    }
    let exec_container = container(heap, min_alloc, inc_alloc);
    if exec_container > nm_mem {
        out.push(Violation {
            rule: RULES[2],
            detail: format!(
                "executor container {exec_container} MB (heap {heap} + overhead, rounded) \
                 > NodeManager memory {nm_mem} MB"
            ),
        });
    }
    if exec_container > max_alloc {
        out.push(Violation {
            rule: RULES[3],
            detail: format!(
                "executor container {exec_container} MB > scheduler max allocation {max_alloc} MB"
            ),
        });
    }
    let driver_container = container(driver, min_alloc, inc_alloc);
    if driver_container > nm_mem {
        out.push(Violation {
            rule: RULES[4],
            detail: format!(
                "driver container {driver_container} MB > NodeManager memory {nm_mem} MB"
            ),
        });
    }
    if dn_handlers * io_buffer > DN_BUFFER_BUDGET_KB {
        out.push(Violation {
            rule: RULES[5],
            detail: format!(
                "DataNode handlers {dn_handlers} x {io_buffer} KB buffers = {} KB \
                 > {DN_BUFFER_BUDGET_KB} KB heap budget",
                dn_handlers * io_buffer
            ),
        });
    }
    out
}

/// [`validate`] for a normalized action (non-finite coordinates are
/// treated as the range midpoint, as [`repair`] does).
pub fn validate_action(space: &KnobSpace, action: &[f64]) -> Vec<Violation> {
    validate(&space.denormalize(&sanitize(action)))
}

/// Is this configuration free of every feasibility violation?
pub fn is_feasible(config: &Configuration) -> bool {
    validate(config).is_empty()
}

fn sanitize(action: &[f64]) -> Vec<f64> {
    action
        .iter()
        .map(|v| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.5
            }
        })
        .collect()
}

/// Project an action onto the feasible region of `[0,1]^32`.
///
/// Coordinates untouched by any rule pass through (after clamping to
/// `[0,1]` and replacing non-finite entries with `0.5`); repaired knobs
/// move the minimal distance the violated rule allows — resource
/// requests only ever shrink toward feasibility, never grow.
pub fn repair(space: &KnobSpace, action: &[f64]) -> Repair {
    let sanitized = sanitize(action);
    let mut cfg = space.denormalize(&sanitized);
    let mut applied: Vec<&'static str> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut fix = |cfg: &mut Configuration, i: usize, v: i64, rule: &'static str| {
        cfg.values[i] = KnobValue::Int(v);
        applied.push(rule);
        touched.push(i);
    };

    let nm_mem = as_u64(&cfg, idx::NM_MEMORY_MB);
    let nm_vcores = as_u64(&cfg, idx::NM_VCORES);
    let min_alloc = as_u64(&cfg, idx::SCHED_MIN_ALLOC_MB);
    let max_alloc = as_u64(&cfg, idx::SCHED_MAX_ALLOC_MB);
    let inc_alloc = as_u64(&cfg, idx::SCHED_INC_ALLOC_MB);

    // cpu.cores_within_nm_vcores — clamp cores to the NodeManager offer.
    if as_u64(&cfg, idx::EXECUTOR_CORES) > nm_vcores {
        fix(&mut cfg, idx::EXECUTOR_CORES, nm_vcores as i64, RULES[0]);
    }
    // cpu.task_cpus_within_cores — against the (possibly clamped) cores.
    let cores = as_u64(&cfg, idx::EXECUTOR_CORES).min(nm_vcores).max(1);
    if as_u64(&cfg, idx::TASK_CPUS) > cores {
        fix(&mut cfg, idx::TASK_CPUS, cores as i64, RULES[1]);
    }
    // mem.executor_fits_nm, then mem.executor_within_max_alloc — shrink
    // the heap until the rounded container fits each bound in turn.
    let (heap_lo, heap_hi) = int_range(space, idx::EXECUTOR_MEMORY_MB);
    for (bound, rule) in [(nm_mem, RULES[2]), (max_alloc, RULES[3])] {
        let heap = as_u64(&cfg, idx::EXECUTOR_MEMORY_MB);
        if container(heap, min_alloc, inc_alloc) > bound {
            if let Some(h) = max_heap_fitting(bound, min_alloc, inc_alloc, heap_lo, heap_hi) {
                fix(&mut cfg, idx::EXECUTOR_MEMORY_MB, h, rule);
            }
        }
    }
    // mem.driver_fits_nm — same projection for the driver AM container.
    let driver = as_u64(&cfg, idx::DRIVER_MEMORY_MB);
    if container(driver, min_alloc, inc_alloc) > nm_mem {
        let (lo, hi) = int_range(space, idx::DRIVER_MEMORY_MB);
        if let Some(h) = max_heap_fitting(nm_mem, min_alloc, inc_alloc, lo, hi) {
            fix(&mut cfg, idx::DRIVER_MEMORY_MB, h, RULES[4]);
        }
    }
    // hdfs.datanode_buffer_budget — shed handler threads, keep the
    // buffer size (block-transfer throughput outranks RPC parallelism).
    let io_buffer = as_u64(&cfg, idx::IO_FILE_BUFFER_KB).max(1);
    if as_u64(&cfg, idx::DN_HANDLER_COUNT) * io_buffer > DN_BUFFER_BUDGET_KB {
        let (lo, hi) = int_range(space, idx::DN_HANDLER_COUNT);
        let dn = ((DN_BUFFER_BUDGET_KB / io_buffer) as i64).clamp(lo, hi);
        fix(&mut cfg, idx::DN_HANDLER_COUNT, dn, RULES[5]);
    }

    if applied.is_empty() {
        return Repair {
            action: sanitized,
            applied,
        };
    }
    // Re-normalize only the repaired coordinates; integer knobs round-trip
    // exactly through normalize → denormalize, which makes the projection
    // idempotent.
    let full = space.normalize(&cfg);
    let mut action = sanitized;
    for i in touched {
        action[i] = full[i];
    }
    Repair { action, applied }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> KnobSpace {
        KnobSpace::pipeline()
    }

    #[test]
    fn default_config_is_feasible() {
        assert_eq!(validate(&space().default_config()), Vec::new());
    }

    #[test]
    fn feasible_action_passes_through_unchanged() {
        let s = space();
        let a = s.normalize(&s.default_config());
        let r = repair(&s, &a);
        assert!(!r.changed());
        assert_eq!(r.action, a);
    }

    #[test]
    fn oversized_executor_violates_and_repairs() {
        let s = space();
        // The known deterministic failing action: giant executors, tiny
        // NodeManager memory.
        let mut a = vec![0.5; 32];
        a[idx::EXECUTOR_MEMORY_MB] = 1.0;
        a[idx::NM_MEMORY_MB] = 0.0;
        a[idx::SCHED_MAX_ALLOC_MB] = 1.0;
        let violations = validate_action(&s, &a);
        assert!(violations.iter().any(|v| v.rule == "mem.executor_fits_nm"));
        let r = repair(&s, &a);
        assert!(r.applied.contains(&"mem.executor_fits_nm"));
        assert!(validate_action(&s, &r.action).is_empty());
        // The repaired config negotiates successfully.
        let cfg = s.denormalize(&r.action);
        assert!(crate::yarn::negotiate(&cfg, &crate::Cluster::cluster_a()).is_ok());
    }

    #[test]
    fn task_cpus_above_cores_is_repaired_after_core_clamp() {
        let s = space();
        let mut a = s.normalize(&s.default_config());
        a[idx::EXECUTOR_CORES] = 1.0; // 8 cores
        a[idx::NM_VCORES] = 0.0; // 4 vcores
        a[idx::TASK_CPUS] = 1.0; // 4 task cpus → fits clamped cores exactly
        let r = repair(&s, &a);
        assert_eq!(r.applied, vec!["cpu.cores_within_nm_vcores"]);
        let cfg = s.denormalize(&r.action);
        assert_eq!(cfg.get(idx::EXECUTOR_CORES).as_i64(), 4);
        assert!(validate(&cfg).is_empty());
    }

    #[test]
    fn datanode_buffer_budget_sheds_handlers() {
        let s = space();
        let mut a = s.normalize(&s.default_config());
        a[idx::DN_HANDLER_COUNT] = 1.0; // 128 handlers
        a[idx::IO_FILE_BUFFER_KB] = 1.0; // 1024 KB buffers → 128 MB
        let violations = validate_action(&s, &a);
        assert!(violations
            .iter()
            .any(|v| v.rule == "hdfs.datanode_buffer_budget"));
        let r = repair(&s, &a);
        let cfg = s.denormalize(&r.action);
        let dn = cfg.get(idx::DN_HANDLER_COUNT).as_i64() as u64;
        let io = cfg.get(idx::IO_FILE_BUFFER_KB).as_i64() as u64;
        assert!(dn * io <= DN_BUFFER_BUDGET_KB);
        assert_eq!(io, 1024, "repair keeps the buffer size");
    }

    #[test]
    fn repair_handles_non_finite_input() {
        let s = space();
        let mut a = vec![f64::NAN; 32];
        a[3] = f64::INFINITY;
        a[4] = -7.0;
        let r = repair(&s, &a);
        assert!(r.action.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(validate_action(&s, &r.action).is_empty());
    }

    #[test]
    fn repair_is_idempotent_on_known_bad_actions() {
        let s = space();
        for bad in [vec![0.0; 32], vec![1.0; 32], {
            let mut a = vec![0.5; 32];
            a[idx::EXECUTOR_MEMORY_MB] = 1.0;
            a[idx::NM_MEMORY_MB] = 0.0;
            a
        }] {
            let once = repair(&s, &bad);
            let twice = repair(&s, &once.action);
            assert_eq!(once.action, twice.action);
            assert!(!twice.changed());
        }
    }

    #[test]
    fn violation_details_name_integers_only() {
        let s = space();
        let violations = validate_action(&s, &vec![1.0; 32]);
        assert!(!violations.is_empty());
        for v in violations {
            assert!(RULES.contains(&v.rule));
            assert!(
                !v.detail.contains('.'),
                "deterministic detail: {}",
                v.detail
            );
        }
    }
}
