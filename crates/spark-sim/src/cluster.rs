//! Hardware model of the simulated cluster.
//!
//! The paper evaluates on two clusters:
//! * **Cluster-A** — three physical nodes, each with an i7-10700 (16 logical
//!   cores), 16 GB DDR4, 1 TB HDD, 1 GbE interconnect.
//! * **Cluster-B** — a VM cluster with 24 cores / 24 GB / 150 GB total,
//!   used for the hardware-adaptability experiment (Fig. 10).

use serde::{Deserialize, Serialize};

/// A single worker node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Logical CPU cores.
    pub cores: u32,
    /// Physical memory in MB.
    pub memory_mb: u64,
    /// Sequential disk bandwidth in MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth in MB/s (1 GbE ≈ 117 MB/s).
    pub net_mbps: f64,
    /// Relative CPU speed (1.0 = Cluster-A's i7-10700).
    pub cpu_speed: f64,
}

/// A homogeneous cluster of worker nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    pub name: &'static str,
    pub nodes: Vec<Node>,
}

impl Cluster {
    /// The paper's physical 3-node cluster (Section 4.1).
    pub fn cluster_a() -> Self {
        let node = Node {
            cores: 16,
            memory_mb: 16 * 1024,
            disk_mbps: 150.0, // 1 TB HDD sequential throughput
            net_mbps: 117.0,  // 1 GbE
            cpu_speed: 1.0,
        };
        Cluster {
            name: "Cluster-A",
            nodes: vec![node; 3],
        }
    }

    /// The VM cluster from the hardware-adaptability experiment
    /// (Section 5.3.2): 3 nodes, 24 cores / 24 GB total, slower virtualized
    /// IO.
    pub fn cluster_b() -> Self {
        let node = Node {
            cores: 8,
            memory_mb: 8 * 1024,
            disk_mbps: 90.0, // virtualized disk
            net_mbps: 100.0,
            cpu_speed: 0.85, // virtualization overhead
        };
        Cluster {
            name: "Cluster-B",
            nodes: vec![node; 3],
        }
    }

    /// A custom homogeneous cluster.
    pub fn homogeneous(name: &'static str, n: usize, node: Node) -> Self {
        Cluster {
            name,
            nodes: vec![node; n],
        }
    }

    /// A heterogeneous 3-node cluster: one fast NVMe box, one Cluster-A
    /// node, one older machine — the mixed-fleet situation production
    /// clusters drift into. Tasks scheduled on different nodes genuinely
    /// run at different speeds in the engine.
    pub fn cluster_c_heterogeneous() -> Self {
        Cluster {
            name: "Cluster-C",
            nodes: vec![
                Node {
                    cores: 16,
                    memory_mb: 16 * 1024,
                    disk_mbps: 450.0,
                    net_mbps: 117.0,
                    cpu_speed: 1.2,
                },
                Node {
                    cores: 16,
                    memory_mb: 16 * 1024,
                    disk_mbps: 150.0,
                    net_mbps: 117.0,
                    cpu_speed: 1.0,
                },
                Node {
                    cores: 8,
                    memory_mb: 8 * 1024,
                    disk_mbps: 90.0,
                    net_mbps: 117.0,
                    cpu_speed: 0.7,
                },
            ],
        }
    }

    /// A copy of this cluster under live production conditions: co-located
    /// services and background jobs shave off CPU, disk and network
    /// headroom. This is the "real user environment" the paper's online
    /// tuning stage adapts the offline model to — same hardware, different
    /// effective capacity, so the offline optimum is slightly displaced.
    pub fn with_background_load(&self, load: f64) -> Cluster {
        assert!(
            (0.0..0.9).contains(&load),
            "background load must be in [0, 0.9)"
        );
        let nodes = self
            .nodes
            .iter()
            .map(|n| Node {
                cores: n.cores,
                memory_mb: (n.memory_mb as f64 * (1.0 - 0.5 * load)) as u64,
                disk_mbps: n.disk_mbps * (1.0 - load),
                net_mbps: n.net_mbps * (1.0 - 0.6 * load),
                cpu_speed: n.cpu_speed * (1.0 - 0.7 * load),
            })
            .collect();
        Cluster {
            name: self.name,
            nodes,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    pub fn total_memory_mb(&self) -> u64 {
        self.nodes.iter().map(|n| n.memory_mb).sum()
    }

    /// All nodes identical? (Both paper clusters are.)
    pub fn is_homogeneous(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0] == w[1])
    }

    /// The representative node (first). Panics on an empty cluster.
    pub fn node(&self) -> &Node {
        &self.nodes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_matches_paper_hardware() {
        let c = Cluster::cluster_a();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.total_cores(), 48);
        assert_eq!(c.total_memory_mb(), 48 * 1024);
        assert!(c.is_homogeneous());
    }

    #[test]
    fn cluster_b_matches_paper_totals() {
        let c = Cluster::cluster_b();
        assert_eq!(c.total_cores(), 24);
        assert_eq!(c.total_memory_mb(), 24 * 1024);
    }

    #[test]
    fn cluster_c_is_heterogeneous() {
        let c = Cluster::cluster_c_heterogeneous();
        assert!(!c.is_homogeneous());
        assert_eq!(c.num_nodes(), 3);
        assert!(c.nodes[0].cpu_speed > c.nodes[2].cpu_speed);
    }

    #[test]
    fn background_load_shaves_capacity() {
        let a = Cluster::cluster_a();
        let busy = a.with_background_load(0.2);
        assert!(busy.node().cpu_speed < a.node().cpu_speed);
        assert!(busy.node().disk_mbps < a.node().disk_mbps);
        assert!(busy.node().memory_mb < a.node().memory_mb);
        assert_eq!(busy.node().cores, a.node().cores);
    }

    #[test]
    fn cluster_b_is_weaker_than_a() {
        let (a, b) = (Cluster::cluster_a(), Cluster::cluster_b());
        assert!(b.total_cores() < a.total_cores());
        assert!(b.node().disk_mbps < a.node().disk_mbps);
        assert!(b.node().cpu_speed < a.node().cpu_speed);
    }
}
