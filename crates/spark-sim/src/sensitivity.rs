//! Knob sensitivity analysis: Morris elementary effects over the
//! normalized configuration space. An engine-side, model-free complement
//! to OtterTune's Lasso ranking — useful both for validating the simulator
//! (do the knobs that should matter actually matter?) and for pruning the
//! action space before tuning.

use crate::cluster::Cluster;
use crate::knobs::KnobSpace;
use crate::workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Sensitivity scores for one knob.
#[derive(Clone, Debug, Serialize)]
pub struct KnobSensitivity {
    /// Knob index in the canonical action order.
    pub knob: usize,
    /// Fully-qualified knob name.
    pub name: &'static str,
    /// Mean of |elementary effect| (μ* in Morris terminology): overall
    /// influence, robust to sign cancellation.
    pub mu_star: f64,
    /// Standard deviation of the effects (σ): interaction / non-linearity.
    pub sigma: f64,
}

/// Configuration of the Morris screening.
#[derive(Clone, Debug)]
pub struct MorrisConfig {
    /// Number of trajectories (base points); each costs `dims + 1` runs.
    pub trajectories: usize,
    /// Step size in the normalized space.
    pub delta: f64,
    pub seed: u64,
}

impl Default for MorrisConfig {
    fn default() -> Self {
        Self {
            trajectories: 12,
            delta: 0.25,
            seed: 7,
        }
    }
}

/// Run Morris elementary-effects screening of all 32 knobs against the
/// simulated execution time of `workload` on `cluster`. Failed runs are
/// included at their penalty time — a knob that flips runs into OOM *is*
/// influential.
pub fn morris_screening(
    cluster: &Cluster,
    workload: Workload,
    cfg: &MorrisConfig,
) -> Vec<KnobSensitivity> {
    let space = KnobSpace::pipeline();
    let dims = space.len();
    let mut env = crate::env::SparkEnv::new(cluster.clone(), workload, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3035);
    let mut effects: Vec<Vec<f64>> = vec![Vec::new(); dims];

    for _ in 0..cfg.trajectories {
        // Random base point kept away from the borders so ±δ stays inside.
        let mut point: Vec<f64> = (0..dims)
            .map(|_| cfg.delta + rng.gen::<f64>() * (1.0 - 2.0 * cfg.delta))
            .collect();
        let mut current = (env.evaluate_action(&point).exec_time_s).ln();
        // Visit dimensions in a random order, stepping one at a time.
        let mut order: Vec<usize> = (0..dims).collect();
        for i in (1..dims).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &d in &order {
            let step = if rng.gen_bool(0.5) {
                cfg.delta
            } else {
                -cfg.delta
            };
            point[d] = (point[d] + step).clamp(0.0, 1.0);
            let next = (env.evaluate_action(&point).exec_time_s).ln();
            effects[d].push((next - current) / step);
            current = next;
        }
    }

    let mut out: Vec<KnobSensitivity> = effects
        .iter()
        .enumerate()
        .map(|(knob, es)| {
            let n = es.len().max(1) as f64;
            let mu_star = es.iter().map(|e| e.abs()).sum::<f64>() / n;
            let mean = es.iter().sum::<f64>() / n;
            let sigma = (es.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n).sqrt();
            KnobSensitivity {
                knob,
                name: space.defs()[knob].name,
                mu_star,
                sigma,
            }
        })
        .collect();
    out.sort_by(|a, b| b.mu_star.total_cmp(&a.mu_star));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::idx;
    use crate::workloads::{InputSize, WorkloadKind};

    fn screening(kind: WorkloadKind) -> Vec<KnobSensitivity> {
        morris_screening(
            &Cluster::cluster_a(),
            Workload::new(kind, InputSize::D1),
            &MorrisConfig {
                trajectories: 8,
                delta: 0.25,
                seed: 11,
            },
        )
    }

    #[test]
    fn returns_all_knobs_ranked() {
        let s = screening(WorkloadKind::TeraSort);
        assert_eq!(s.len(), 32);
        for w in s.windows(2) {
            assert!(w[0].mu_star >= w[1].mu_star, "must be sorted by influence");
        }
        assert!(s
            .iter()
            .all(|k| k.mu_star.is_finite() && k.sigma.is_finite()));
    }

    #[test]
    fn resource_knobs_rank_high_on_terasort() {
        let s = screening(WorkloadKind::TeraSort);
        let rank = |i: usize| s.iter().position(|k| k.knob == i).unwrap();
        let resource_best = [
            idx::EXECUTOR_CORES,
            idx::EXECUTOR_INSTANCES,
            idx::EXECUTOR_MEMORY_MB,
            idx::DEFAULT_PARALLELISM,
        ]
        .into_iter()
        .map(rank)
        .min()
        .unwrap();
        assert!(
            resource_best < 8,
            "at least one resource knob must rank in the top 8 (best was {resource_best})"
        );
    }

    #[test]
    fn memory_knobs_matter_more_on_kmeans_than_wordcount() {
        let km = screening(WorkloadKind::KMeans);
        let wc = screening(WorkloadKind::WordCount);
        let mem_mu = |s: &[KnobSensitivity]| {
            s.iter()
                .filter(|k| {
                    [
                        idx::EXECUTOR_MEMORY_MB,
                        idx::MEMORY_FRACTION,
                        idx::MEMORY_STORAGE_FRACTION,
                    ]
                    .contains(&k.knob)
                })
                .map(|k| k.mu_star)
                .sum::<f64>()
        };
        let total = |s: &[KnobSensitivity]| s.iter().map(|k| k.mu_star).sum::<f64>();
        let km_share = mem_mu(&km) / total(&km);
        let wc_share = mem_mu(&wc) / total(&wc);
        assert!(
            km_share > wc_share,
            "memory share on KMeans ({km_share:.3}) vs WordCount ({wc_share:.3})"
        );
    }

    #[test]
    fn screening_is_deterministic() {
        let a = screening(WorkloadKind::PageRank);
        let b = screening(WorkloadKind::PageRank);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.knob, y.knob);
            assert_eq!(x.mu_star, y.mu_star);
        }
    }
}
