//! Typed view of a [`Configuration`] — the semantic fields the execution
//! engine reads, decoded once per evaluation instead of via repeated
//! positional lookups.

use crate::knobs::{idx, Configuration};
use serde::{Deserialize, Serialize};

/// Object serialization implementation (`spark.serializer`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Serializer {
    Java,
    Kryo,
}

/// Compression codec (`spark.io.compression.codec`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Codec {
    Lz4,
    Lzf,
    Snappy,
}

impl Codec {
    /// Compressed-size ratio on typical shuffle data.
    pub fn ratio(self) -> f64 {
        match self {
            Codec::Lz4 => 0.50,
            Codec::Lzf => 0.56,
            Codec::Snappy => 0.52,
        }
    }

    /// Extra CPU seconds per MB compressed + decompressed (reference core).
    pub fn cpu_per_mb(self) -> f64 {
        match self {
            Codec::Lz4 => 0.0020,
            Codec::Lzf => 0.0026,
            Codec::Snappy => 0.0022,
        }
    }
}

/// All 32 knobs decoded into engine-ready fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Effective {
    // Spark
    pub executor_cores: u32,
    pub executor_memory_mb: u64,
    pub executor_instances: u32,
    pub default_parallelism: u32,
    pub memory_fraction: f64,
    pub storage_fraction: f64,
    pub shuffle_compress: bool,
    pub shuffle_spill_compress: bool,
    pub shuffle_file_buffer_kb: u64,
    pub reducer_max_in_flight_mb: u64,
    pub serializer: Serializer,
    pub rdd_compress: bool,
    pub codec: Codec,
    pub locality_wait_s: f64,
    pub speculation: bool,
    pub task_cpus: u32,
    pub broadcast_block_mb: u64,
    pub driver_memory_mb: u64,
    pub driver_cores: u32,
    pub bypass_merge_threshold: u32,
    // YARN
    pub nm_memory_mb: u64,
    pub nm_vcores: u32,
    pub sched_min_alloc_mb: u64,
    pub sched_max_alloc_mb: u64,
    pub sched_inc_alloc_mb: u64,
    pub vmem_pmem_ratio: f64,
    pub pmem_check: bool,
    // HDFS
    pub dfs_block_mb: u64,
    pub dfs_replication: u32,
    pub nn_handlers: u32,
    pub dn_handlers: u32,
    pub io_buffer_kb: u64,
}

impl Effective {
    /// Decode a full configuration. Panics if `config` does not have the
    /// pipeline space's 32 entries in canonical order.
    pub fn decode(config: &Configuration) -> Self {
        assert_eq!(
            config.values.len(),
            32,
            "expected the 32-knob pipeline space"
        );
        let g = |i: usize| config.get(i);
        Effective {
            executor_cores: g(idx::EXECUTOR_CORES).as_i64() as u32,
            executor_memory_mb: g(idx::EXECUTOR_MEMORY_MB).as_i64() as u64,
            executor_instances: g(idx::EXECUTOR_INSTANCES).as_i64() as u32,
            default_parallelism: g(idx::DEFAULT_PARALLELISM).as_i64() as u32,
            memory_fraction: g(idx::MEMORY_FRACTION).as_f64(),
            storage_fraction: g(idx::MEMORY_STORAGE_FRACTION).as_f64(),
            shuffle_compress: g(idx::SHUFFLE_COMPRESS).as_bool(),
            shuffle_spill_compress: g(idx::SHUFFLE_SPILL_COMPRESS).as_bool(),
            shuffle_file_buffer_kb: g(idx::SHUFFLE_FILE_BUFFER_KB).as_i64() as u64,
            reducer_max_in_flight_mb: g(idx::REDUCER_MAX_SIZE_IN_FLIGHT_MB).as_i64() as u64,
            serializer: if g(idx::SERIALIZER).as_i64() == 1 {
                Serializer::Kryo
            } else {
                Serializer::Java
            },
            rdd_compress: g(idx::RDD_COMPRESS).as_bool(),
            codec: match g(idx::IO_COMPRESSION_CODEC).as_i64() {
                1 => Codec::Lzf,
                2 => Codec::Snappy,
                _ => Codec::Lz4,
            },
            locality_wait_s: g(idx::LOCALITY_WAIT_S).as_f64(),
            speculation: g(idx::SPECULATION).as_bool(),
            task_cpus: g(idx::TASK_CPUS).as_i64() as u32,
            broadcast_block_mb: g(idx::BROADCAST_BLOCK_SIZE_MB).as_i64() as u64,
            driver_memory_mb: g(idx::DRIVER_MEMORY_MB).as_i64() as u64,
            driver_cores: g(idx::DRIVER_CORES).as_i64() as u32,
            bypass_merge_threshold: g(idx::SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD).as_i64() as u32,
            nm_memory_mb: g(idx::NM_MEMORY_MB).as_i64() as u64,
            nm_vcores: g(idx::NM_VCORES).as_i64() as u32,
            sched_min_alloc_mb: g(idx::SCHED_MIN_ALLOC_MB).as_i64() as u64,
            sched_max_alloc_mb: g(idx::SCHED_MAX_ALLOC_MB).as_i64() as u64,
            sched_inc_alloc_mb: g(idx::SCHED_INC_ALLOC_MB).as_i64() as u64,
            vmem_pmem_ratio: g(idx::VMEM_PMEM_RATIO).as_f64(),
            pmem_check: g(idx::PMEM_CHECK).as_bool(),
            dfs_block_mb: g(idx::DFS_BLOCK_SIZE_MB).as_i64() as u64,
            dfs_replication: g(idx::DFS_REPLICATION).as_i64() as u32,
            nn_handlers: g(idx::NN_HANDLER_COUNT).as_i64() as u32,
            dn_handlers: g(idx::DN_HANDLER_COUNT).as_i64() as u32,
            io_buffer_kb: g(idx::IO_FILE_BUFFER_KB).as_i64() as u64,
        }
    }

    /// CPU multiplier for the serialization share of a stage's work:
    /// Kryo roughly halves (de)serialization cost relative to Java.
    pub fn ser_cpu_multiplier(&self, ser_fraction: f64) -> f64 {
        match self.serializer {
            Serializer::Java => 1.0,
            Serializer::Kryo => 1.0 - 0.45 * ser_fraction,
        }
    }

    /// In-memory footprint multiplier for cached RDDs: Kryo stores
    /// serialized compact bytes; `spark.rdd.compress` shrinks them further
    /// at decompression CPU cost.
    pub fn cache_footprint_multiplier(&self) -> f64 {
        let ser = match self.serializer {
            Serializer::Java => 1.0,
            Serializer::Kryo => 0.55,
        };
        let comp = if self.rdd_compress { 0.65 } else { 1.0 };
        ser * comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{KnobSpace, KnobValue};

    #[test]
    fn decode_defaults() {
        let s = KnobSpace::pipeline();
        let e = Effective::decode(&s.default_config());
        assert_eq!(e.executor_cores, 1);
        assert_eq!(e.executor_memory_mb, 1024);
        assert_eq!(e.serializer, Serializer::Java);
        assert_eq!(e.codec, Codec::Lz4);
        assert!(e.pmem_check);
        assert_eq!(e.dfs_block_mb, 128);
    }

    #[test]
    fn decode_categorical_variants() {
        let s = KnobSpace::pipeline();
        let mut cfg = s.default_config();
        cfg.values[idx::SERIALIZER] = KnobValue::Cat(1);
        cfg.values[idx::IO_COMPRESSION_CODEC] = KnobValue::Cat(2);
        let e = Effective::decode(&cfg);
        assert_eq!(e.serializer, Serializer::Kryo);
        assert_eq!(e.codec, Codec::Snappy);
    }

    #[test]
    fn kryo_reduces_ser_cpu_and_cache_footprint() {
        let s = KnobSpace::pipeline();
        let mut cfg = s.default_config();
        let java = Effective::decode(&cfg);
        cfg.values[idx::SERIALIZER] = KnobValue::Cat(1);
        cfg.values[idx::RDD_COMPRESS] = KnobValue::Bool(true);
        let kryo = Effective::decode(&cfg);
        assert!(kryo.ser_cpu_multiplier(0.5) < java.ser_cpu_multiplier(0.5));
        assert!(kryo.cache_footprint_multiplier() < java.cache_footprint_multiplier());
    }

    #[test]
    fn codec_ratios_are_compressive() {
        for c in [Codec::Lz4, Codec::Lzf, Codec::Snappy] {
            assert!(c.ratio() > 0.0 && c.ratio() < 1.0);
            assert!(c.cpu_per_mb() > 0.0);
        }
    }
}
