//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces the workspace uses: [`scope`] (scoped threads,
//! built on `std::thread::scope`) and [`channel`] (bounded/unbounded MPSC
//! channels, built on `std::sync::mpsc`).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
///
/// Spawned closures receive a placeholder argument (crossbeam passes
/// `&Scope`; every call site in this workspace ignores it with `|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be spawned.
///
/// Mirrors `crossbeam::scope`: returns `Err` if `f` or any spawned thread
/// panicked, `Ok(result)` otherwise.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! MPSC channels mirroring `crossbeam::channel`'s API slice.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// Sending half of a channel (clonable).
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            };
            Self { inner }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Bounded(s) => s.send(value),
                SenderKind::Unbounded(s) => s.send(value),
            }
        }

        /// Non-blocking send: `Err(TrySendError::Full)` when a bounded
        /// channel is at capacity (unbounded channels are never full),
        /// `Err(TrySendError::Disconnected)` when the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderKind::Bounded(s) => s.try_send(value),
                SenderKind::Unbounded(s) => s
                    .send(value)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// A channel with capacity `cap`; senders block when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// A channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = vec![1u64, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn bounded_channel_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }
}
