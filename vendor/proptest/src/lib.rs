//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: range
//! strategies over ints/floats, tuples of strategies,
//! `proptest::collection::vec`, `.prop_map`, the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are seeded deterministically from
//! the test name (no persisted failure file) and failures are **not
//! shrunk** — the failing case's values appear in the panic message via the
//! assertion formatting instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, O> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($idx:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Number of elements for [`vec`]: a fixed size or a range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test seed (FNV-1a over the test path).
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Fresh RNG for one `proptest!`-generated test.
pub fn test_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    // Internal: expand one batch of test functions under a config.
    (@cfg $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17u32, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn prop_map_applies(d in (0..10u32).prop_map(|x| x * 2)) {
            prop_assert_eq!(d % 2, 0);
        }
    }
}
