//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network, so this vendored crate provides
//! the exact API slice the workspace uses: `StdRng::seed_from_u64`, the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the
//! reproduction relies on (tests assert same-seed/same-result, never
//! golden sequences from upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding trait; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot the generator's internal state (checkpoint support —
        /// not part of the real `rand` API, but this stand-in is the
        /// workspace's only StdRng, so resumable runs snapshot it here).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`state`](Self::state) snapshot.
        /// The restored generator continues the exact same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
