//! Offline stand-in for the `rand_distr` crate: the [`Normal`]
//! distribution (all the workspace uses) sampled with Box–Muller.

use rand::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors constructing a distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation was negative or non-finite.
    BadVariance,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid normal distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; u1 is kept away from zero so ln() is finite.
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_negative_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_match() {
        let n = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }
}
