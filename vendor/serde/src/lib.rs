//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy data model, this vendored
//! version routes everything through an owned [`Value`] tree:
//!
//! * [`Serialize`] turns a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a `&Value`;
//! * the derive macros (re-exported from `serde_derive`) generate both for
//!   structs and enums with the same JSON shape real serde produces
//!   (externally-tagged enums, maps for named fields).
//!
//! `serde_json` (also vendored) converts `Value` to and from JSON text.
//! The indirection costs an allocation per node, which is irrelevant for
//! the checkpoint/report payloads this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing data model every type serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v >= 0.0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Turn a value into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Fetch a struct field from a serialized map; missing keys read as null
/// so `Option` fields tolerate hand-edited payloads.
pub fn field<'a>(m: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, found {}", type_name(got)))
}

// ---- primitive impls -------------------------------------------------

macro_rules! int_impls {
    ($($t:ty => $variant:ident as $repr:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::$variant(*self as $repr)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| unexpected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impls!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64
);

// u64/usize may exceed i64; deserialize through as_u64 instead.
macro_rules! uint64_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| unexpected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

uint64_impls!(u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // serde_json writes non-finite floats as null; accept them back.
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| unexpected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| unexpected("bool", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| unexpected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

/// `&'static str` round-trips by leaking the deserialized string. The only
/// such fields are interned names (cluster/workload labels), so the leak is
/// a few bytes per checkpoint load.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| unexpected("sequence", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, found {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| unexpected("sequence", v))?;
                let expected = [$(stringify!($idx)),+].len();
                if s.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found {} elements", s.len()
                    )));
                }
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| unexpected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| unexpected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).serialize(), Value::U64(3));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::deserialize(&Value::I64(4)).unwrap(), 4.0);
        assert_eq!(u32::deserialize(&Value::F64(7.0)).unwrap(), 7);
        assert!(u32::deserialize(&Value::F64(7.5)).is_err());
        assert!(u8::deserialize(&Value::I64(300)).is_err());
    }

    #[test]
    fn tuples_and_vecs() {
        let v = (1u32, 2.5f64, "x".to_string()).serialize();
        let back = <(u32, f64, String)>::deserialize(&v).unwrap();
        assert_eq!(back, (1, 2.5, "x".to_string()));
        let vec = vec![1u64, 2, 3].serialize();
        assert_eq!(Vec::<u64>::deserialize(&vec).unwrap(), vec![1, 2, 3]);
    }
}
