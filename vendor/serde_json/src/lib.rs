//! Offline stand-in for the `serde_json` crate: converts the vendored
//! serde's [`Value`] tree to and from JSON text.
//!
//! Matches real serde_json where it matters to this workspace:
//! externally-tagged enums, maps for structs, non-finite floats emitted as
//! `null`, and a strict parser (trailing garbage is an error).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::deserialize(v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Keep a trailing ".0" so floats stay floats on re-read,
                // matching serde_json's output for whole numbers.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

/// Parse a complete JSON document (trailing non-whitespace is an error).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn roundtrip_nested() {
        let v = vec![(1u32, "x".to_string()), (2, "y\u{1F600}".to_string())];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(parse_value("{\"a\":1,}").is_err());
    }

    #[test]
    fn parses_escapes_and_negative_exponents() {
        assert_eq!(
            parse_value(r#""A\t""#).unwrap(),
            Value::Str("A\t".to_string())
        );
        assert_eq!(parse_value("-1.5e-3").unwrap(), Value::F64(-0.0015));
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
    }
}
