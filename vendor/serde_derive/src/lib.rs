//! Offline stand-in for `serde_derive`.
//!
//! Derives `serde::Serialize` / `serde::Deserialize` for the vendored
//! serde's owned [`Value`] data model. Written against `proc_macro` alone
//! (no `syn`/`quote` — the build environment has no network), so parsing
//! is a small hand-rolled scan over the token stream.
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields, tuple structs (incl. newtypes), unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   same JSON shape real serde emits);
//! * no generics, no `#[serde(...)]` attributes, no discriminants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---- parsing ---------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, incl. doc comments) and visibility.
    let mut kind = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = s;
                    i += 1;
                    break;
                }
                i += 1; // `pub`, `crate`, ...
            }
            _ => i += 1, // e.g. the group in `pub(crate)`
        }
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
        other => panic!("serde_derive: unexpected token after `{kind} {name}`: {other:?}"),
    };
    Item { name, shape }
}

/// Split a token stream on commas that sit outside `<...>` generic
/// arguments (delimited groups are already opaque `TokenTree::Group`s).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// First identifier of a field chunk after attributes and visibility.
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(_)) = chunk.get(i) {
                    i += 1; // `pub(crate)` / `pub(super)`
                }
            }
            TokenTree::Ident(id) => return id.to_string(),
            other => panic!("serde_derive: cannot find field name at {other}"),
        }
    }
    panic!("serde_derive: empty field chunk");
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|c| field_name(c))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let name = field_name(chunk);
            // The group (if any) directly after the variant name decides
            // the kind; skip attribute groups that precede the name.
            let mut kind = VariantKind::Unit;
            let mut seen_name = false;
            for tt in chunk {
                match tt {
                    TokenTree::Ident(id) if !seen_name && id.to_string() == name => {
                        seen_name = true;
                    }
                    TokenTree::Group(g) if seen_name => {
                        kind = match g.delimiter() {
                            Delimiter::Parenthesis => {
                                VariantKind::Tuple(split_top_level(g.stream()).len())
                            }
                            Delimiter::Brace => VariantKind::Named(parse_named_fields(g.stream())),
                            _ => VariantKind::Unit,
                        };
                        break;
                    }
                    _ => {}
                }
            }
            Variant { name, kind }
        })
        .collect()
}

// ---- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Serialize::serialize(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), serde::Serialize::serialize({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn serialize(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::deserialize(serde::field(__m, \"{f}\"))\
                         .map_err(|e| serde::Error(format!(\"{name}.{f}: {{}}\", e.0)))?"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| serde::Error::custom(\"{name}: expected map\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::deserialize(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| serde::Error::custom(\"{name}: expected sequence\"))?;\n\
                 if __s.len() != {n} {{ return Err(serde::Error::custom(\"{name}: wrong tuple arity\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut str_arms: Vec<String> = Vec::new();
            let mut map_arms: Vec<String> = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push(format!("\"{vn}\" => Ok({name}::{vn})"));
                    }
                    VariantKind::Tuple(1) => {
                        map_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::deserialize(__inner)?))"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::deserialize(&__s[{i}])?"))
                            .collect();
                        map_arms.push(format!(
                            "\"{vn}\" => {{\n\
                             let __s = __inner.as_seq().ok_or_else(|| serde::Error::custom(\"{name}::{vn}: expected sequence\"))?;\n\
                             if __s.len() != {n} {{ return Err(serde::Error::custom(\"{name}::{vn}: wrong arity\")); }}\n\
                             Ok({name}::{vn}({})) }}",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!(
                                "{f}: serde::Deserialize::deserialize(serde::field(__m, \"{f}\"))\
                                 .map_err(|e| serde::Error(format!(\"{name}::{vn}.{f}: {{}}\", e.0)))?"
                            ))
                            .collect();
                        map_arms.push(format!(
                            "\"{vn}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| serde::Error::custom(\"{name}::{vn}: expected map\"))?;\n\
                             Ok({name}::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            str_arms.push(format!(
                "__other => Err(serde::Error(format!(\"{name}: unknown variant {{__other}}\")))"
            ));
            map_arms.push(format!(
                "__other => Err(serde::Error(format!(\"{name}: unknown variant {{__other}}\")))"
            ));
            format!(
                "match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{ {} }},\n\
                 serde::Value::Map(__m1) if __m1.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m1[0];\n\
                 match __tag.as_str() {{ {} }}\n\
                 }},\n\
                 _ => Err(serde::Error::custom(\"{name}: expected string or single-key map\")),\n\
                 }}",
                str_arms.join(", "),
                map_arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n    }}\n}}"
    )
}
