//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `benchmark_group` / `Bencher` API slice the
//! bench targets use, measuring with plain wall-clock timing: a short
//! warm-up, then enough iterations to fill a small time budget, reporting
//! the per-iteration mean. No statistics, plotting, or baselines — just
//! numbers on stdout so `cargo bench` works offline.

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(120);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        budget: WARMUP,
    };
    f(&mut b); // warm-up pass (discarded)
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        budget: MEASURE,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    println!("{id:<50} {:>14} iters  mean {}", b.iters, fmt_ns(mean_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// How much setup output to batch per measured run (API-compatibility
/// shim; batching granularity does not change what we measure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        while self.total < self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.total < self.budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
