//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API slice it actually uses: [`Mutex`] and [`RwLock`] with
//! `parking_lot` semantics (no lock poisoning — a panic while holding the
//! lock simply releases it for the next owner). Implemented on top of the
//! std primitives; poisoning is swallowed via `into_inner`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
