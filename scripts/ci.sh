#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root (or anywhere —
# the script cd's to its own checkout). Keep in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check

# Static analysis: determinism, panic-freedom, numeric-safety, and
# telemetry-naming invariants (see DESIGN.md and lint.toml). Fails on any
# unsuppressed finding and on stale allowlist entries.
cargo run --release -q -p deepcat-lint

# Determinism smoke: two same-seed runs of a single-threaded experiment
# with frozen telemetry clocks must produce byte-identical event logs.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/deepcat-repro fig5 --quick --deterministic \
    --log "$smoke_dir/a.jsonl" >/dev/null
./target/release/deepcat-repro fig5 --quick --deterministic \
    --log "$smoke_dir/b.jsonl" >/dev/null
cmp "$smoke_dir/a.jsonl" "$smoke_dir/b.jsonl" || {
    echo "determinism smoke failed: same-seed runs diverged" >&2
    exit 1
}
echo "determinism smoke: OK ($(wc -l <"$smoke_dir/a.jsonl") events, byte-identical)"
