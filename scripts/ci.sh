#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root (or anywhere —
# the script cd's to its own checkout). Keep in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
