#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root (or anywhere —
# the script cd's to its own checkout). Keep in sync with ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check

# Static analysis: token families plus the AST/call-graph families
# (concurrency.lock_order, concurrency.guard_across_emit,
# panic.reachable, determinism.entropy_flow, telemetry.session_scope) —
# see DESIGN.md "Static analysis v2" and lint.toml. Fails on any
# unsuppressed finding across every family and on stale allowlist
# entries. The SARIF artifact is written first (non-gating) so it is
# available for upload even when the gate fails.
mkdir -p target/ci-artifacts
cargo run --release -q -p deepcat-lint -- --format sarif \
    >target/ci-artifacts/deepcat-lint.sarif || true
cargo run --release -q -p deepcat-lint

# Determinism smoke: two same-seed runs of a single-threaded experiment
# with frozen telemetry clocks must produce byte-identical event logs.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/deepcat-repro fig5 --quick --deterministic \
    --log "$smoke_dir/a.jsonl" >/dev/null
./target/release/deepcat-repro fig5 --quick --deterministic \
    --log "$smoke_dir/b.jsonl" >/dev/null
cmp "$smoke_dir/a.jsonl" "$smoke_dir/b.jsonl" || {
    echo "determinism smoke failed: same-seed runs diverged" >&2
    exit 1
}
echo "determinism smoke: OK ($(wc -l <"$smoke_dir/a.jsonl") events, byte-identical)"

# Chrome-trace determinism: the trace exports derived from the two
# deterministic logs must also be byte-identical (frozen clock + stable
# span-id assignment).
./target/release/deepcat-tune report --log "$smoke_dir/a.jsonl" \
    --trace "$smoke_dir/a.trace.json" >/dev/null
./target/release/deepcat-tune report --log "$smoke_dir/b.jsonl" \
    --trace "$smoke_dir/b.trace.json" >/dev/null
cmp "$smoke_dir/a.trace.json" "$smoke_dir/b.trace.json" || {
    echo "trace determinism failed: chrome-trace exports diverged" >&2
    exit 1
}
echo "trace determinism: OK (byte-identical chrome-trace export)"

# Chaos smoke: the resilient online stage under a seeded fault plan must
# be byte-for-byte reproducible, and a session killed after 2 steps then
# resumed from its checkpoint must land on the same best configuration as
# an uninterrupted run (the `chaos.best` event line carries the full
# action vector).
./target/release/deepcat-tune train --iters 500 --seed 2022 \
    --model "$smoke_dir/chaos-model.json" >/dev/null
./target/release/deepcat-tune chaos --plan mixed --deterministic \
    --model "$smoke_dir/chaos-model.json" \
    --alerts alerts.toml --metrics-out "$smoke_dir/chaos-a.prom" \
    --log "$smoke_dir/chaos-a.jsonl" >/dev/null
./target/release/deepcat-tune chaos --plan mixed --deterministic \
    --model "$smoke_dir/chaos-model.json" \
    --alerts alerts.toml --metrics-out "$smoke_dir/chaos-b.prom" \
    --log "$smoke_dir/chaos-b.jsonl" >/dev/null
cmp "$smoke_dir/chaos-a.jsonl" "$smoke_dir/chaos-b.jsonl" || {
    echo "chaos determinism failed: same-plan runs diverged" >&2
    exit 1
}
echo "chaos determinism: OK ($(wc -l <"$smoke_dir/chaos-a.jsonl") events, byte-identical)"

# Exposition determinism: the Prometheus snapshots written at the end of
# the two deterministic chaos runs must be byte-identical (sorted
# registry iteration + frozen clocks + stable session ids).
cmp "$smoke_dir/chaos-a.prom" "$smoke_dir/chaos-b.prom" || {
    echo "exposition determinism failed: Prometheus snapshots diverged" >&2
    exit 1
}
echo "exposition determinism: OK ($(wc -l <"$smoke_dir/chaos-a.prom") series lines, byte-identical)"

# Top determinism: `top --once` is a pure fold of the log, so the two
# deterministic logs must render identical dashboards (the header names
# the log path, so normalize it first).
./target/release/deepcat-tune top "$smoke_dir/chaos-a.jsonl" --once \
    | sed 's|chaos-a\.jsonl|LOG|' >"$smoke_dir/top-a.txt"
./target/release/deepcat-tune top "$smoke_dir/chaos-b.jsonl" --once \
    | sed 's|chaos-b\.jsonl|LOG|' >"$smoke_dir/top-b.txt"
cmp "$smoke_dir/top-a.txt" "$smoke_dir/top-b.txt" || {
    echo "top determinism failed: dashboard snapshots diverged" >&2
    exit 1
}
echo "top determinism: OK (byte-identical --once dashboards)"
./target/release/deepcat-tune chaos --plan mixed --deterministic \
    --model "$smoke_dir/chaos-model.json" \
    --checkpoint "$smoke_dir/chaos-cp.json" --kill-after 2 >/dev/null
./target/release/deepcat-tune chaos --plan mixed --deterministic \
    --model "$smoke_dir/chaos-model.json" \
    --checkpoint "$smoke_dir/chaos-cp.json" --resume \
    --log "$smoke_dir/chaos-resume.jsonl" >/dev/null
grep '"chaos.best"' "$smoke_dir/chaos-a.jsonl" >"$smoke_dir/chaos-best-full.txt"
grep '"chaos.best"' "$smoke_dir/chaos-resume.jsonl" >"$smoke_dir/chaos-best-resumed.txt"
cmp "$smoke_dir/chaos-best-full.txt" "$smoke_dir/chaos-best-resumed.txt" || {
    echo "chaos recovery failed: resumed session found a different best config" >&2
    exit 1
}
echo "chaos recovery: OK (kill@2 + resume reproduces the best configuration)"

# Crash-recovery fleet smoke: 8 concurrent durable sessions, each killed
# mid-append by an injected storage fault (torn write, short write,
# failed fsync, ENOSPC, latent bit flip — flavor rotates per session) and
# resumed from its commitlog. Every recovered session's step records must
# be byte-identical to its uninterrupted reference run's.
./target/release/deepcat-tune fleet --sessions 8 --steps 4 --iters 500 \
    --kill-at 3 --deterministic --seed 2022 \
    --model "$smoke_dir/chaos-model.json" \
    --out-dir "$smoke_dir/fleet" >/dev/null
fleet_crashes=0
for i in 0 1 2 3 4 5 6 7; do
    cmp "$smoke_dir/fleet/session-$i-reference.jsonl" \
        "$smoke_dir/fleet/session-$i-recovered.jsonl" || {
        echo "fleet recovery failed: session $i diverged from its reference" >&2
        exit 1
    }
    fleet_crashes=$((fleet_crashes + 1))
done
echo "fleet recovery: OK ($fleet_crashes/8 crashed sessions resumed byte-identically)"

# Multi-tenant service smoke: 8 sessions multiplexed through the
# supervised TuningService under the panic3 plan (two injected panics
# plus one deadline-blowing stall, all mid-run, at the scheduler
# boundary). The process must survive and every session must complete —
# crashed ones by resuming from their commitlog. Containment proof:
#   * two same-seed faulted runs produce byte-identical per-session logs,
#   * every session's step log — survivors AND crashed-then-recovered —
#     is byte-identical to the fault-free run's,
#   * --extract replays one session solo (no service, no faults) and
#     matches its multiplexed stream byte for byte.
./target/release/deepcat-tune serve --sessions 8 --steps 4 --iters 500 \
    --faults panic3 --deterministic --seed 2022 \
    --model "$smoke_dir/chaos-model.json" \
    --log "$smoke_dir/serve-a.jsonl" \
    --out-dir "$smoke_dir/serve-a" >/dev/null
./target/release/deepcat-tune serve --sessions 8 --steps 4 --iters 500 \
    --faults panic3 --deterministic --seed 2022 \
    --model "$smoke_dir/chaos-model.json" \
    --out-dir "$smoke_dir/serve-b" >/dev/null
./target/release/deepcat-tune serve --sessions 8 --steps 4 --iters 500 \
    --faults none --deterministic --seed 2022 \
    --model "$smoke_dir/chaos-model.json" \
    --out-dir "$smoke_dir/serve-clean" >/dev/null
for i in 0 1 2 3 4 5 6 7; do
    cmp "$smoke_dir/serve-a/session-$i-steps.jsonl" \
        "$smoke_dir/serve-b/session-$i-steps.jsonl" || {
        echo "service determinism failed: session $i diverged across runs" >&2
        exit 1
    }
    cmp "$smoke_dir/serve-a/session-$i-steps.jsonl" \
        "$smoke_dir/serve-clean/session-$i-steps.jsonl" || {
        echo "service containment failed: faults perturbed session $i" >&2
        exit 1
    }
done
grep -q '"supervisor.panic_contained"' "$smoke_dir/serve-a.jsonl" || {
    echo "service smoke failed: no panic was contained" >&2
    exit 1
}
grep -q '"supervisor.restart"' "$smoke_dir/serve-a.jsonl" || {
    echo "service smoke failed: no crashed session was restarted" >&2
    exit 1
}
./target/release/deepcat-tune serve --sessions 8 --steps 4 --iters 500 \
    --deterministic --seed 2022 --extract 2 \
    --model "$smoke_dir/chaos-model.json" \
    --out-dir "$smoke_dir/serve-extract" >/dev/null
cmp "$smoke_dir/serve-extract/extract-2-steps.jsonl" \
    "$smoke_dir/serve-a/session-2-steps.jsonl" || {
    echo "service extraction failed: solo replay diverged from multiplexed run" >&2
    exit 1
}
echo "service smoke: OK (8 sessions under panic3: contained, recovered, extractable)"

# Guardrail smoke: a guarded chaos run under the blackout plan must let
# zero infeasible configurations reach the simulator (no
# `guardrail.infeasible_eval` event in the log) and stay byte-for-byte
# reproducible across two same-seed runs.
./target/release/deepcat-tune chaos --plan blackout --deterministic \
    --guardrails on --model "$smoke_dir/chaos-model.json" \
    --log "$smoke_dir/guard-a.jsonl" >/dev/null
./target/release/deepcat-tune chaos --plan blackout --deterministic \
    --guardrails on --model "$smoke_dir/chaos-model.json" \
    --log "$smoke_dir/guard-b.jsonl" >/dev/null
cmp "$smoke_dir/guard-a.jsonl" "$smoke_dir/guard-b.jsonl" || {
    echo "guardrail determinism failed: same-seed guarded runs diverged" >&2
    exit 1
}
if grep -q '"guardrail.infeasible_eval"' "$smoke_dir/guard-a.jsonl"; then
    echo "guardrail smoke failed: an infeasible config reached the simulator" >&2
    exit 1
fi
echo "guardrail smoke: OK (zero infeasible evals, byte-identical)"

# Perf-regression gate: run the pinned quick-profile baseline suite and
# compare hot-path throughput against the committed BENCH_10.json. Fails
# loudly naming the regressed metric; tolerance absorbs machine noise.
./target/release/deepcat-bench baseline --out "$smoke_dir/bench-current.json" >/dev/null
./target/release/deepcat-bench compare --baseline BENCH_10.json \
    --current "$smoke_dir/bench-current.json" --tolerance 0.6

# Observability-plane non-regression: the committed BENCH_10 numbers must
# keep the sharded emit hot path within 10% of the pre-service BENCH_9
# baseline — a static file-vs-file gate, so it costs nothing per run.
./target/release/deepcat-bench compare --baseline BENCH_9.json \
    --current BENCH_10.json --tolerance 0.10 \
    --metric telemetry_events_per_s_enabled

# Telemetry-overhead gate: within the fresh baseline run, the sharded
# emit hot path must beat the retired global-mutex path by >= 5x, and
# the disabled path must stay effectively free. Machine-relative ratio,
# so no cross-machine tolerance is needed.
./target/release/deepcat-bench overhead --current "$smoke_dir/bench-current.json"

# Session rollup smoke: the offline re-fold of a deterministic log must
# render a per-session table without error. --strict-telemetry turns any
# dropped event or sink error in the chaos/guardrail logs into a CI
# failure (both logs come from lossless deterministic pipelines).
./target/release/deepcat-tune report --log "$smoke_dir/chaos-a.jsonl" \
    --by-session --strict-telemetry >/dev/null
./target/release/deepcat-tune report --log "$smoke_dir/guard-a.jsonl" \
    --strict-telemetry >/dev/null
echo "session report smoke: OK (strict telemetry clean)"
