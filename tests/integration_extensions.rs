//! Integration coverage of the extension features: budget-constrained
//! tuning, white-box optimization, model persistence across the
//! offline/online split, parallel training, custom job DAGs and the
//! config exporter — each exercised end-to-end through the public API.

use deepcat::{
    load_td3, online_tune_td3, online_tune_whitebox, save_td3, train_td3, train_td3_parallel,
    AgentConfig, BudgetedTuning, OfflineConfig, OnlineConfig, ParallelConfig, TuningEnv,
};
use spark_sim::{
    export_bundle, synthetic_job, Cluster, InputSize, SparkEnv, SynthParams, Workload, WorkloadKind,
};

fn quick_cfg(env: &TuningEnv) -> AgentConfig {
    let mut c = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    c.hidden = vec![32, 32];
    c.warmup_steps = 96;
    c.batch_size = 32;
    c
}

#[test]
fn offline_online_split_via_model_file() {
    // Train offline, persist, reload in a "different process", tune online —
    // the deployment flow Fig. 1 of the paper assumes.
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 501);
    let ac = quick_cfg(&offline);
    let (agent, _, _) = train_td3(&mut offline, ac, &OfflineConfig::deepcat(700, 1), &[]);
    let dir = std::env::temp_dir().join("deepcat-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_td3(&agent, &path).unwrap();

    let mut loaded = load_td3(&path, 99).unwrap();
    let mut live = TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 502);
    let report = online_tune_td3(&mut loaded, &mut live, &OnlineConfig::deepcat(2), "DeepCAT");
    assert!(report.speedup() > 1.5, "{}", report.speedup());
}

#[test]
fn budgeted_tuning_respects_its_budget_end_to_end() {
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 503);
    let ac = quick_cfg(&offline);
    let (mut agent, _, _) = train_td3(&mut offline, ac, &OfflineConfig::deepcat(700, 2), &[]);
    let mut live = TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 504);
    let out = BudgetedTuning::new(400.0, 3).run(&mut agent, &mut live);
    let last = out.report.steps.last().unwrap();
    assert!(out.spent_s <= 400.0 + last.exec_time_s + last.recommendation_s);
    assert!(
        out.report.best_exec_time_s < live.default_exec_time(),
        "best {:.1}s vs default {:.1}s over {} steps",
        out.report.best_exec_time_s,
        live.default_exec_time(),
        out.steps_taken
    );
}

#[test]
fn whitebox_tuning_diagnoses_and_tunes() {
    let w = Workload::new(WorkloadKind::PageRank, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 505);
    let ac = quick_cfg(&offline);
    let (mut agent, _, _) = train_td3(&mut offline, ac, &OfflineConfig::deepcat(700, 4), &[]);
    let mut live = TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 506);
    let (report, bottlenecks) =
        online_tune_whitebox(&mut agent, &mut live, &OnlineConfig::deepcat(5));
    assert_eq!(report.steps.len(), 5);
    assert!(bottlenecks[1..].iter().all(Option::is_some));
    assert!(report.speedup() > 1.5);
}

#[test]
fn parallel_and_serial_training_reach_similar_quality() {
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let serial = {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, 507);
        let ac = quick_cfg(&env);
        let (mut agent, _, _) = train_td3(&mut env, ac, &OfflineConfig::deepcat(800, 5), &[]);
        let mut live =
            TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 508);
        online_tune_td3(&mut agent, &mut live, &OnlineConfig::deepcat(6), "x").best_exec_time_s
    };
    let parallel = {
        let make_env = |worker: usize| {
            TuningEnv::for_workload(Cluster::cluster_a(), w, 507 + worker as u64 * 71)
        };
        let tmp_env = make_env(0);
        let ac = quick_cfg(&tmp_env);
        let (mut agent, _, stats) = train_td3_parallel(
            make_env,
            ac,
            &OfflineConfig::deepcat(800, 5),
            &ParallelConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(stats.gradient_steps, 800);
        let mut live =
            TuningEnv::for_workload(Cluster::cluster_a().with_background_load(0.15), w, 508);
        online_tune_td3(&mut agent, &mut live, &OnlineConfig::deepcat(6), "x").best_exec_time_s
    };
    // Same gradient budget, same workload: quality should be comparable.
    assert!(
        parallel < serial * 2.0 && serial < parallel * 2.0,
        "serial {serial:.1}s vs parallel {parallel:.1}s"
    );
}

#[test]
fn custom_synthetic_pipeline_can_be_tuned() {
    let job = synthetic_job(
        &SynthParams {
            stages: 4,
            input_mb: 1024.0,
            ..Default::default()
        },
        3,
    );
    let env = SparkEnv::with_job(Cluster::cluster_a(), "custom", job.clone(), 509);
    assert_eq!(env.label(), "custom");
    let mut tuning = TuningEnv::new(env, 5);
    let ac = quick_cfg(&tuning);
    let (mut agent, _, _) = train_td3(&mut tuning, ac, &OfflineConfig::deepcat(600, 6), &[]);
    let mut live = TuningEnv::new(
        SparkEnv::with_job(Cluster::cluster_a(), "custom", job, 510),
        5,
    );
    let report = online_tune_td3(&mut agent, &mut live, &OnlineConfig::deepcat(7), "DeepCAT");
    assert_eq!(report.workload, "custom");
    assert!(report.speedup() > 1.2, "{}", report.speedup());
}

#[test]
fn best_action_exports_deployable_configs() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 511);
    let ac = quick_cfg(&offline);
    let (mut agent, _, _) = train_td3(&mut offline, ac, &OfflineConfig::deepcat(600, 8), &[]);
    let mut live = TuningEnv::for_workload(Cluster::cluster_a(), w, 512);
    let report = online_tune_td3(&mut agent, &mut live, &OnlineConfig::deepcat(9), "DeepCAT");
    let space = live.spark().space();
    let cfg = space.denormalize(&report.best_action);
    let bundle = export_bundle(space, &cfg);
    assert_eq!(
        bundle
            .spark_defaults_conf
            .lines()
            .filter(|l| l.starts_with("spark."))
            .count(),
        20
    );
    assert_eq!(bundle.yarn_site_xml.matches("<property>").count(), 7);
    assert_eq!(bundle.hdfs_site_xml.matches("<property>").count(), 5);
}
