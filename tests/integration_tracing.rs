//! End-to-end tracing: the instrumented tuning stack must attribute
//! ≥95% of instrumented wall time to named spans, nest spans correctly
//! across crate boundaries, and — under the frozen clock — produce
//! byte-identical Chrome-trace exports and profile tables for two
//! same-seed runs. One test fn: the sink/enable flag and the span-id
//! counter are process globals.

use deepcat::{
    online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, Td3Agent, TuningEnv,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::sync::Arc;
use telemetry::trace::reset_ids;
use telemetry::{Profiler, SpanRecord, TestSink};

const SEED: u64 = 2022;

fn workload_env(seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    )
}

/// Run a small offline + online pipeline under a fresh capturing sink
/// and return the recorded spans in emission order.
fn traced_run() -> Vec<SpanRecord> {
    let sink = Arc::new(TestSink::new());
    telemetry::install(sink.clone());
    reset_ids();
    let mut env = workload_env(SEED);
    let cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    let (mut agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(120, SEED), &[]);
    let oc = OnlineConfig {
        steps: 3,
        ..OnlineConfig::deepcat(SEED)
    };
    let mut live = workload_env(SEED ^ 0xFACE);
    let _ = online_tune_td3(&mut agent, &mut live, &oc, "DeepCAT");
    telemetry::shutdown();
    sink.events()
        .iter()
        .filter_map(SpanRecord::from_event)
        .collect()
}

/// Online-only run with an untrained agent — cheap and fully seeded, for
/// the byte-identical determinism comparison.
fn frozen_run() -> (String, String) {
    let sink = Arc::new(TestSink::new());
    telemetry::install(sink.clone());
    reset_ids();
    let mut env = workload_env(SEED);
    let mut agent = Td3Agent::new(
        AgentConfig::for_dims(env.state_dim(), env.action_dim()),
        SEED,
    );
    let oc = OnlineConfig {
        steps: 3,
        ..OnlineConfig::deepcat(SEED)
    };
    let _ = online_tune_td3(&mut agent, &mut env, &oc, "DeepCAT");
    telemetry::shutdown();
    let spans: Vec<SpanRecord> = sink
        .events()
        .iter()
        .filter_map(SpanRecord::from_event)
        .collect();
    assert!(!spans.is_empty(), "frozen run recorded no spans");
    let mut profiler = Profiler::new();
    profiler.add_all(spans.clone());
    (
        telemetry::chrome_trace_json(&spans),
        profiler.report().render(),
    )
}

#[test]
fn tracing_attributes_wall_time_and_is_deterministic_when_frozen() {
    // ---- unfrozen: real durations, coverage and hierarchy checks ----
    let spans = traced_run();
    let find =
        |name: &str| -> Vec<&SpanRecord> { spans.iter().filter(|r| r.name == name).collect() };
    let by_id = |id: u64| spans.iter().find(|r| r.span_id == id);

    // The offline loop nests episode > step, and the online loop nests
    // request > step; cross-crate children point at the right parents.
    for step in find("offline.step") {
        let parent = by_id(step.parent_id).expect("offline.step parent recorded");
        assert_eq!(parent.name, "offline.episode", "{step:?}");
    }
    let requests = find("online.request");
    assert_eq!(requests.len(), 1);
    for step in find("online.step") {
        assert_eq!(step.parent_id, requests[0].span_id, "{step:?}");
    }
    for eval in find("env.eval") {
        let parent = by_id(eval.parent_id).expect("env.eval parent recorded");
        assert!(
            parent.name == "offline.step" || parent.name == "online.step",
            "env.eval under {parent:?}"
        );
    }
    for rescore in find("twinq.rescore") {
        let parent = by_id(rescore.parent_id).expect("twinq.rescore parent");
        assert_eq!(parent.name, "twinq.loop", "{rescore:?}");
    }
    assert!(!find("td3.critic_update").is_empty());
    assert!(!find("replay.sample").is_empty());
    assert!(!find("sim.engine_step").is_empty());

    // ≥95% of instrumented wall time lands in named spans (the ISSUE's
    // attribution bar; self times partition root durations exactly, so
    // in practice this is ~100%).
    let mut profiler = Profiler::new();
    profiler.add_all(spans.clone());
    let report = profiler.report();
    assert!(report.total_wall_s > 0.0, "{report:?}");
    assert!(
        report.coverage_pct() >= 95.0,
        "coverage {:.2}% of {:.6}s",
        report.coverage_pct(),
        report.total_wall_s
    );

    // ---- frozen clock: two same-seed runs are byte-identical ----
    telemetry::freeze_clock();
    let (trace_a, table_a) = frozen_run();
    let (trace_b, table_b) = frozen_run();
    telemetry::unfreeze_clock();
    assert_eq!(
        trace_a, trace_b,
        "chrome-trace exports must match byte-for-byte"
    );
    assert_eq!(table_a, table_b, "profile tables must match");
    // Frozen spans all report zero timestamps/durations.
    assert!(trace_a.contains("\"ts\":0.000,\"dur\":0.000"), "{trace_a}");
}
