//! Cross-method validation: the engine-side Morris screening and the
//! data-side Lasso ranking (OtterTune's knob selector) must broadly agree
//! on which knobs dominate — two independent views of the same response
//! surface.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spark_sim::{
    morris_screening, Cluster, InputSize, MorrisConfig, SparkEnv, Workload, WorkloadKind,
};
use surrogate::rank_knobs;

#[test]
fn morris_and_lasso_agree_on_influential_knobs() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);

    // Morris: model-free elementary effects on the simulator.
    let morris = morris_screening(
        &Cluster::cluster_a(),
        w,
        &MorrisConfig {
            trajectories: 10,
            delta: 0.25,
            seed: 3,
        },
    );
    let morris_top: Vec<usize> = morris.iter().take(10).map(|k| k.knob).collect();

    // Lasso: regression over observed (config, log exec time) samples.
    let mut env = SparkEnv::new(Cluster::cluster_a(), w, 17);
    let mut rng = StdRng::seed_from_u64(18);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..400 {
        let a = env.space().random_action(&mut rng);
        let t = env.evaluate_action(&a).exec_time_s;
        xs.push(a);
        ys.push(t.ln());
    }
    let lasso_top: Vec<usize> = rank_knobs(&xs, &ys, 8).into_iter().take(10).collect();

    let overlap = morris_top.iter().filter(|k| lasso_top.contains(k)).count();
    assert!(
        overlap >= 3,
        "top-10 overlap {overlap} too small\nmorris: {morris_top:?}\nlasso:  {lasso_top:?}"
    );
}
