//! End-to-end chaos: the resilient online session must survive named
//! fault plans, stay deterministic under them, and recover from a
//! mid-run kill via checkpoints — across the whole stack (simulator
//! fault injection, resilient wrapper, TD3 fine-tuning, persistence).

use deepcat::{
    online_tune_resilient, train_td3, AgentConfig, ChaosSessionConfig, OfflineConfig, OnlineConfig,
    ResiliencePolicy, ResilientEnv, SessionOutcome, Td3Agent, TuningEnv, TuningReport,
};
use spark_sim::{Cluster, FaultPlan, InputSize, Workload, WorkloadKind, PLAN_NAMES};

fn live_env(seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        Cluster::cluster_a().with_background_load(0.15),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    )
}

fn trained_agent(seed: u64) -> Td3Agent {
    let mut env = TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    );
    let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    cfg.hidden = vec![32, 32];
    cfg.warmup_steps = 64;
    cfg.batch_size = 32;
    let (agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(500, seed), &[]);
    agent
}

fn run_session(plan: Option<FaultPlan>, session: &ChaosSessionConfig) -> SessionOutcome {
    let mut agent = trained_agent(33);
    let mut env = ResilientEnv::new(live_env(34), ResiliencePolicy::default());
    if let Some(p) = plan {
        env.install_plan(p);
    }
    online_tune_resilient(
        &mut agent,
        &mut env,
        &OnlineConfig::deepcat(7),
        session,
        "DeepCAT",
    )
    .expect("session I/O")
}

fn completed(out: SessionOutcome) -> TuningReport {
    match out {
        SessionOutcome::Completed(r) => r,
        SessionOutcome::Killed { completed_steps }
        | SessionOutcome::Crashed { completed_steps } => {
            panic!("unexpected death after {completed_steps} steps")
        }
    }
}

#[test]
fn every_named_plan_completes_all_steps() {
    for name in PLAN_NAMES {
        let plan = FaultPlan::named(name, 11).expect("known plan");
        let report = completed(run_session(Some(plan), &ChaosSessionConfig::default()));
        assert_eq!(report.steps.len(), 5, "plan {name}");
        assert!(
            report.steps.iter().all(|s| s.reward.is_finite()),
            "plan {name}: non-finite reward escaped"
        );
        assert!(
            report.best_exec_time_s.is_finite() && report.best_exec_time_s > 0.0,
            "plan {name}"
        );
    }
}

#[test]
fn chaos_sessions_are_deterministic() {
    let plan = || FaultPlan::named("mixed", 11).expect("known plan");
    let a = completed(run_session(Some(plan()), &ChaosSessionConfig::default()));
    let b = completed(run_session(Some(plan()), &ChaosSessionConfig::default()));
    assert_eq!(a.best_action, b.best_action);
    assert_eq!(a.best_exec_time_s, b.best_exec_time_s);
    for (x, y) in a.steps.iter().zip(b.steps.iter()) {
        assert_eq!(x.exec_time_s, y.exec_time_s, "step {}", x.step);
        assert_eq!(x.reward, y.reward, "step {}", x.step);
        assert_eq!(x.resilience, y.resilience, "step {}", x.step);
    }
}

#[test]
fn faults_cost_more_than_fault_free() {
    let plan = FaultPlan::named("mixed", 11).expect("known plan");
    let faulted = completed(run_session(Some(plan), &ChaosSessionConfig::default()));
    let clean = completed(run_session(None, &ChaosSessionConfig::default()));
    assert!(
        faulted.total_cost_s() > clean.total_cost_s(),
        "chaos must not be free: {} vs {}",
        faulted.total_cost_s(),
        clean.total_cost_s()
    );
    assert_eq!(clean.total_retries(), 0);
}

#[test]
fn killed_session_resumes_to_the_same_result() {
    let dir =
        std::env::temp_dir().join(format!("deepcat-integration-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("commitlog");
    let plan = || FaultPlan::named("flaky", 11).expect("known plan");

    let full = completed(run_session(Some(plan()), &ChaosSessionConfig::default()));
    let killed = run_session(
        Some(plan()),
        &ChaosSessionConfig {
            checkpoint: Some(path.clone()),
            resume: false,
            kill_after: Some(3),
            ..ChaosSessionConfig::default()
        },
    );
    assert!(matches!(
        killed,
        SessionOutcome::Killed { completed_steps: 3 }
    ));
    let resumed = completed(run_session(
        Some(plan()),
        &ChaosSessionConfig {
            checkpoint: Some(path),
            resume: true,
            kill_after: None,
            ..ChaosSessionConfig::default()
        },
    ));
    assert_eq!(resumed.best_action, full.best_action);
    assert_eq!(resumed.best_exec_time_s, full.best_exec_time_s);
    assert_eq!(resumed.steps.len(), full.steps.len());
}
