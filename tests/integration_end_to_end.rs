//! End-to-end integration: the full DeepCAT pipeline (spark-sim substrate →
//! rl replay → tensor-nn agents → online tuning) against the simulated
//! cluster.

use deepcat::{DeepCat, Tuner, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn quick_deepcat(env: &TuningEnv, iters: usize, seed: u64) -> DeepCat {
    let mut t = DeepCat::for_env(env, iters, seed);
    t.agent_cfg.hidden = vec![32, 32];
    t.agent_cfg.warmup_steps = 96;
    t
}

#[test]
fn deepcat_end_to_end_beats_default_substantially() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 900);
    let mut tuner = quick_deepcat(&offline, 900, 1);
    tuner.offline_train(&mut offline);
    let live = Cluster::cluster_a().with_background_load(0.15);
    let mut online = TuningEnv::for_workload(live, w, 901);
    let report = tuner.online_tune(&mut online, 5);
    assert!(
        report.speedup() > 2.0,
        "end-to-end speedup should be substantial, got {:.2}",
        report.speedup()
    );
}

#[test]
fn report_invariants_hold() {
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 902);
    let mut tuner = quick_deepcat(&offline, 700, 2);
    tuner.offline_train(&mut offline);
    let mut online = TuningEnv::for_workload(Cluster::cluster_a(), w, 903);
    let report = tuner.online_tune(&mut online, 5);

    assert_eq!(report.steps.len(), 5);
    // Totals match per-step sums.
    let eval: f64 = report.steps.iter().map(|s| s.exec_time_s).sum();
    let rec: f64 = report.steps.iter().map(|s| s.recommendation_s).sum();
    assert!((report.total_eval_s - eval).abs() < 1e-9);
    assert!((report.total_rec_s - rec).abs() < 1e-9);
    // Best matches the minimum step.
    let min = report
        .steps
        .iter()
        .map(|s| s.exec_time_s)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(report.best_exec_time_s, min);
    // Monotone step-series helpers.
    assert!(report.best_so_far().windows(2).all(|w| w[1] <= w[0]));
    assert!(report.accumulated_cost().windows(2).all(|w| w[1] > w[0]));
    // The best action decodes to a valid configuration.
    let cfg = online.spark().space().denormalize(&report.best_action);
    assert_eq!(cfg.values.len(), 32);
}

#[test]
fn online_env_evaluations_are_counted() {
    let w = Workload::new(WorkloadKind::PageRank, InputSize::D1);
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), w, 904);
    let mut tuner = quick_deepcat(&offline, 600, 3);
    tuner.offline_train(&mut offline);
    assert!(
        offline.eval_count() >= 600,
        "offline training evaluates each step"
    );
    let mut online = TuningEnv::for_workload(Cluster::cluster_a(), w, 905);
    let before = online.eval_count();
    tuner.online_tune(&mut online, 5);
    assert_eq!(
        online.eval_count() - before,
        5,
        "exactly one evaluation per online step"
    );
}
