//! The experiment drivers themselves: tables regenerate exactly, the Fig. 2
//! distribution has the paper's shape, and the parallel runner is sound.

use deepcat::experiments::{self, ExperimentConfig};

#[test]
fn tables_match_the_paper_exactly() {
    let t1 = experiments::table1();
    assert_eq!(t1.len(), 4);
    let ts = t1.iter().find(|r| r.workload == "TeraSort").unwrap();
    assert_eq!(ts.inputs, vec!["3.2 GB", "6 GB", "10 GB"]);
    let km = t1.iter().find(|r| r.workload == "KMeans").unwrap();
    assert_eq!(km.inputs, vec!["20 M points", "30 M points", "40 M points"]);

    let t2 = experiments::table2();
    let total: usize = t2.iter().map(|r| r.parameters).sum();
    assert_eq!(total, 32);
}

#[test]
fn fig2_has_paper_shape() {
    let r = experiments::fig2(&ExperimentConfig::quick());
    // "it is easy to find a better-than-default configuration" …
    assert!(r.frac_better_than_default > 0.5);
    // … "the close-to-optimal configurations are far fewer".
    assert!(r.frac_within_10pct_of_best < 0.1);
    assert!(r.best_exec_s < r.default_exec_s);
}

#[test]
fn par_map_runs_closures_in_parallel_and_in_order() {
    let results = experiments::par_map((0..64).collect::<Vec<u64>>(), |i| i * i);
    assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
}
