//! The three tuners side by side on one workload: all must beat the
//! default configuration, and the cost-accounting contract must hold for
//! each (this is the smoke version of Figs. 6–7; the full 12-pair run is
//! the `fig6_speedup`/`fig7_cost` bench target).

use deepcat::{build_repository, CdbTune, DeepCat, OtterTune, Tuner, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};

fn target() -> Workload {
    Workload::new(WorkloadKind::WordCount, InputSize::D1)
}

fn run_tuner(tuner: &mut dyn Tuner, seed: u64) -> deepcat::TuningReport {
    let mut offline = TuningEnv::for_workload(Cluster::cluster_a(), target(), seed);
    tuner.offline_train(&mut offline);
    let live = Cluster::cluster_a().with_background_load(0.15);
    let mut online = TuningEnv::for_workload(live, target(), seed ^ 0xFF);
    tuner.online_tune(&mut online, 5)
}

#[test]
fn deepcat_beats_default() {
    let env = TuningEnv::for_workload(Cluster::cluster_a(), target(), 1);
    let mut t = DeepCat::for_env(&env, 900, 5);
    let report = run_tuner(&mut t, 1000);
    assert_eq!(report.tuner, "DeepCAT");
    assert!(report.speedup() > 1.5, "{}", report.speedup());
}

#[test]
fn cdbtune_beats_default() {
    let env = TuningEnv::for_workload(Cluster::cluster_a(), target(), 2);
    let mut t = CdbTune::for_env(&env, 900, 6);
    let report = run_tuner(&mut t, 2000);
    assert_eq!(report.tuner, "CDBTune");
    assert!(report.speedup() > 1.2, "{}", report.speedup());
}

#[test]
fn ottertune_beats_default() {
    let repo_workloads: Vec<Workload> = Workload::all_pairs()
        .into_iter()
        .filter(|w| *w != target() && w.input == InputSize::D1)
        .collect();
    let repo = build_repository(&Cluster::cluster_a(), &repo_workloads, 80, 7);
    let mut t = OtterTune::with_repository(repo, 8);
    t.ei_candidates = 500;
    let report = run_tuner(&mut t, 3000);
    assert_eq!(report.tuner, "OtterTune");
    assert!(report.speedup() > 1.2, "{}", report.speedup());
}

#[test]
fn recommendation_time_shape_matches_paper() {
    // DRL recommendation is near-free; OtterTune pays for GP training at
    // every step (paper §5.2.2: 0.69s / 0.25s vs 43.25s).
    let env = TuningEnv::for_workload(Cluster::cluster_a(), target(), 3);
    let mut d = DeepCat::for_env(&env, 600, 9);
    let drl = run_tuner(&mut d, 4000);

    let repo_workloads: Vec<Workload> = Workload::all_pairs()
        .into_iter()
        .filter(|w| *w != target() && w.input == InputSize::D1)
        .collect();
    let repo = build_repository(&Cluster::cluster_a(), &repo_workloads, 80, 10);
    let mut o = OtterTune::with_repository(repo, 11);
    let ml = run_tuner(&mut o, 5000);

    assert!(
        ml.total_rec_s > drl.total_rec_s * 10.0,
        "OtterTune recommendation ({:.4}s) must dwarf DRL's ({:.4}s)",
        ml.total_rec_s,
        drl.total_rec_s
    );
}
