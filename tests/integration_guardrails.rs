//! End-to-end guardrails: with `--guardrails on` semantics (the
//! [`deepcat::GuardrailPolicy::on`] policy), no infeasible configuration
//! ever reaches the simulator under *any* named fault plan, guarded
//! sessions stay deterministic and checkpoint/resume-safe, and the
//! fault-free unguarded path is arithmetically unchanged by the
//! guardrail layer being compiled in.

use deepcat::{
    online_tune_resilient, train_td3, AgentConfig, ChaosSessionConfig, GuardrailPolicy,
    OfflineConfig, OnlineConfig, ResiliencePolicy, ResilientEnv, SessionOutcome, Td3Agent,
    TuningEnv, TuningReport,
};
use spark_sim::{Cluster, FaultPlan, InputSize, Workload, WorkloadKind, PLAN_NAMES};

fn live_env(seed: u64) -> TuningEnv {
    TuningEnv::for_workload(
        Cluster::cluster_a().with_background_load(0.15),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    )
}

fn trained_agent(seed: u64) -> Td3Agent {
    let mut env = TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    );
    let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    cfg.hidden = vec![32, 32];
    cfg.warmup_steps = 64;
    cfg.batch_size = 32;
    let (agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(500, seed), &[]);
    agent
}

/// Run one session and also return how many infeasible configurations
/// the simulator saw — the tripwire the guardrail must hold at zero.
fn run_session(plan: Option<FaultPlan>, session: &ChaosSessionConfig) -> (SessionOutcome, u64) {
    let mut agent = trained_agent(33);
    let mut env = ResilientEnv::new(live_env(34), ResiliencePolicy::default());
    if let Some(p) = plan {
        env.install_plan(p);
    }
    let out = online_tune_resilient(
        &mut agent,
        &mut env,
        &OnlineConfig::deepcat(7),
        session,
        "DeepCAT",
    )
    .expect("session I/O");
    (out, env.inner().spark().infeasible_eval_count())
}

fn completed(out: SessionOutcome) -> TuningReport {
    match out {
        SessionOutcome::Completed(r) => r,
        SessionOutcome::Killed { completed_steps }
        | SessionOutcome::Crashed { completed_steps } => {
            panic!("unexpected death after {completed_steps} steps")
        }
    }
}

fn guarded() -> ChaosSessionConfig {
    ChaosSessionConfig {
        guardrails: GuardrailPolicy::on(),
        ..ChaosSessionConfig::default()
    }
}

#[test]
fn guarded_sessions_never_evaluate_infeasible_configs() {
    for name in PLAN_NAMES {
        let plan = FaultPlan::named(name, 11).expect("known plan");
        let (out, infeasible) = run_session(Some(plan), &guarded());
        let report = completed(out);
        assert_eq!(report.steps.len(), 5, "plan {name}");
        assert_eq!(
            infeasible, 0,
            "plan {name}: an infeasible configuration reached the simulator"
        );
        assert!(
            report.steps.iter().all(|s| s.reward.is_finite()),
            "plan {name}: non-finite reward escaped"
        );
    }
}

#[test]
fn guarded_sessions_are_deterministic() {
    let plan = || FaultPlan::named("blackout", 11).expect("known plan");
    let (a, _) = run_session(Some(plan()), &guarded());
    let (b, _) = run_session(Some(plan()), &guarded());
    let (a, b) = (completed(a), completed(b));
    assert_eq!(a.best_action, b.best_action);
    assert_eq!(a.best_exec_time_s, b.best_exec_time_s);
    for (x, y) in a.steps.iter().zip(b.steps.iter()) {
        assert_eq!(x.exec_time_s, y.exec_time_s, "step {}", x.step);
        assert_eq!(x.reward, y.reward, "step {}", x.step);
        assert_eq!(x.guardrail, y.guardrail, "step {}", x.step);
    }
}

#[test]
fn killed_guarded_session_resumes_to_the_same_result() {
    let dir = std::env::temp_dir().join(format!(
        "deepcat-integration-guardrails-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("commitlog");
    let plan = || FaultPlan::named("mixed", 11).expect("known plan");

    let (full, _) = run_session(Some(plan()), &guarded());
    let full = completed(full);
    let (killed, _) = run_session(
        Some(plan()),
        &ChaosSessionConfig {
            checkpoint: Some(path.clone()),
            kill_after: Some(3),
            ..guarded()
        },
    );
    assert!(matches!(
        killed,
        SessionOutcome::Killed { completed_steps: 3 }
    ));
    let (resumed, infeasible) = run_session(
        Some(plan()),
        &ChaosSessionConfig {
            checkpoint: Some(path),
            resume: true,
            ..guarded()
        },
    );
    let resumed = completed(resumed);
    assert_eq!(resumed.best_action, full.best_action);
    assert_eq!(resumed.best_exec_time_s, full.best_exec_time_s);
    assert_eq!(resumed.steps.len(), full.steps.len());
    assert_eq!(infeasible, 0);
    for (x, y) in resumed.steps.iter().zip(full.steps.iter()) {
        assert_eq!(x.guardrail, y.guardrail, "step {}", x.step);
    }
}

#[test]
fn disabled_guardrails_change_nothing() {
    // The default (disabled) policy must be an exact no-op: a session
    // with `guardrails: GuardrailPolicy::default()` reproduces the
    // pre-guardrail arithmetic bit for bit.
    let plan = || FaultPlan::named("flaky", 11).expect("known plan");
    let (unguarded, _) = run_session(Some(plan()), &ChaosSessionConfig::default());
    let unguarded = completed(unguarded);
    assert_eq!(unguarded.total_vetoed(), 0);
    assert_eq!(unguarded.total_repaired(), 0);
    assert_eq!(unguarded.total_canary_aborts(), 0);
    assert_eq!(unguarded.total_rollbacks(), 0);
    assert_eq!(unguarded.guardrail_saved_s(), 0.0);
    // Guardrails on under a fault-free plan with a well-trained agent:
    // cost accounting may differ (canary), but the session still
    // completes every step with finite rewards.
    let (guarded_run, infeasible) = run_session(None, &guarded());
    let guarded_run = completed(guarded_run);
    assert_eq!(guarded_run.steps.len(), 5);
    assert_eq!(infeasible, 0);
}
