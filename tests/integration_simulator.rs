//! Cross-crate simulator behaviour: the mechanical effects every tuner
//! exploits must be visible through the public environment API.

use spark_sim::{idx, Cluster, InputSize, KnobValue, SparkEnv, Workload, WorkloadKind};

fn tuned_action(env: &SparkEnv) -> Vec<f64> {
    let space = env.space();
    let mut cfg = space.default_config();
    cfg.values[idx::EXECUTOR_CORES] = KnobValue::Int(4);
    cfg.values[idx::EXECUTOR_MEMORY_MB] = KnobValue::Int(4096);
    cfg.values[idx::EXECUTOR_INSTANCES] = KnobValue::Int(9);
    cfg.values[idx::DEFAULT_PARALLELISM] = KnobValue::Int(96);
    cfg.values[idx::SERIALIZER] = KnobValue::Cat(1);
    cfg.values[idx::NM_MEMORY_MB] = KnobValue::Int(14336);
    cfg.values[idx::NM_VCORES] = KnobValue::Int(14);
    space.normalize(&cfg)
}

#[test]
fn resource_knobs_dominate_performance() {
    for kind in WorkloadKind::all() {
        let w = Workload::new(kind, InputSize::D1);
        let mut env = SparkEnv::new(Cluster::cluster_a(), w, 10);
        let action = tuned_action(&env);
        let tuned = env.evaluate_action(&action);
        assert!(!tuned.failed, "{kind}: tuned config must not fail");
        assert!(
            tuned.exec_time_s * 1.8 < env.default_exec_time(),
            "{kind}: tuned {:.1}s vs default {:.1}s",
            tuned.exec_time_s,
            env.default_exec_time()
        );
    }
}

#[test]
fn cluster_b_is_slower_for_the_same_config() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut a = SparkEnv::new(Cluster::cluster_a(), w, 20);
    let mut b = SparkEnv::new(Cluster::cluster_b(), w, 20);
    let action = tuned_action(&a);
    let ta = a.evaluate_action(&action).exec_time_s;
    let tb = b.evaluate_action(&action).exec_time_s;
    assert!(tb > ta, "VM cluster must be slower: {tb:.1} vs {ta:.1}");
}

#[test]
fn background_load_slows_the_cluster() {
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let idle = SparkEnv::new(Cluster::cluster_a(), w, 30).default_exec_time();
    let busy =
        SparkEnv::new(Cluster::cluster_a().with_background_load(0.3), w, 30).default_exec_time();
    assert!(busy > idle, "busy {busy:.1} vs idle {idle:.1}");
}

#[test]
fn state_vector_reflects_activity() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D2);
    let mut env = SparkEnv::new(Cluster::cluster_a(), w, 40);
    let idle_state = env.idle_state();
    let r = env.evaluate_action(&tuned_action(&env));
    let busy_state = env.observe(&r);
    let idle_sum: f64 = idle_state.iter().sum();
    let busy_sum: f64 = busy_state.iter().sum();
    assert!(busy_sum > idle_sum, "load averages rise during a tuned run");
}

#[test]
fn metrics_feed_ottertune_mapping() {
    // Metric vectors of different workload kinds must be distinguishable —
    // this is what OtterTune's workload mapping relies on.
    let mut wc = SparkEnv::new(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::WordCount, InputSize::D1),
        50,
    );
    let mut km = SparkEnv::new(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::KMeans, InputSize::D1),
        50,
    );
    let a = tuned_action(&wc);
    let mwc = wc.evaluate_action(&a).metrics.metric_vector();
    let mkm = km.evaluate_action(&a).metrics.metric_vector();
    let dist: f64 = mwc.iter().zip(&mkm).map(|(x, y)| (x - y) * (x - y)).sum();
    assert!(
        dist > 0.1,
        "workload metric signatures must differ, d² = {dist}"
    );
}
