//! Two tuning sessions running concurrently through the sharded
//! telemetry pipeline must partition the JSONL event stream exactly:
//! every event belongs to exactly one session (by `session_id`), events
//! never leak across sessions (a tuner's events all carry its session's
//! id), and the live per-session rollup agrees with an offline re-fold
//! of the log.

use deepcat::{
    online_tune_resilient, train_td3, AgentConfig, ChaosSessionConfig, OfflineConfig, OnlineConfig,
    ResiliencePolicy, ResilientEnv, SessionOutcome, Td3Agent, TuningEnv,
};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::path::PathBuf;
use std::sync::Arc;
use telemetry::{JsonlSink, SessionCtx};

const ALPHA_ID: u64 = 101;
const BETA_ID: u64 = 202;
const STEPS: usize = 5;

fn trained_agent(seed: u64) -> Td3Agent {
    let mut env = TuningEnv::for_workload(
        Cluster::cluster_a(),
        Workload::new(WorkloadKind::TeraSort, InputSize::D1),
        seed,
    );
    let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    cfg.hidden = vec![32, 32];
    cfg.warmup_steps = 64;
    cfg.batch_size = 32;
    let (agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(500, seed), &[]);
    agent
}

fn run_session(mut agent: Td3Agent, env_seed: u64, ctx: SessionCtx, tuner: &str) {
    // The ambient scope covers env construction too (its simulator probes
    // belong to the session); the explicit `session:` field exercises the
    // pinned-identity path inside the tuner as well.
    telemetry::with_session(&ctx, || {
        let mut env = ResilientEnv::new(
            TuningEnv::for_workload(
                Cluster::cluster_a().with_background_load(0.15),
                Workload::new(WorkloadKind::TeraSort, InputSize::D1),
                env_seed,
            ),
            ResiliencePolicy::default(),
        );
        let session = ChaosSessionConfig {
            session: Some(ctx.clone()),
            ..ChaosSessionConfig::default()
        };
        let out = online_tune_resilient(
            &mut agent,
            &mut env,
            &OnlineConfig::deepcat(7),
            &session,
            tuner,
        )
        .expect("session I/O");
        assert!(matches!(out, SessionOutcome::Completed(_)));
    });
}

fn temp_log() -> PathBuf {
    std::env::temp_dir().join(format!("sessions-{}.jsonl", std::process::id()))
}

#[test]
fn interleaved_sessions_partition_the_jsonl_stream() {
    // Train before installing telemetry: offline training is session-less
    // and would otherwise flood the log with unattributed events.
    let agent = trained_agent(33);
    let path = temp_log();
    let sink = JsonlSink::create(&path).expect("temp jsonl");
    telemetry::install_sharded(Arc::new(sink), telemetry::DEFAULT_SHARD_CAPACITY);

    std::thread::scope(|s| {
        let alpha_agent = agent.clone();
        s.spawn(move || {
            run_session(
                alpha_agent,
                34,
                SessionCtx::new(ALPHA_ID, "alpha"),
                "alpha-tuner",
            );
        });
        s.spawn(move || {
            run_session(agent, 35, SessionCtx::new(BETA_ID, "beta"), "beta-tuner");
        });
    });

    // The live aggregator (fed at every drain) saw both sessions fully.
    let live = telemetry::session_report();
    assert_eq!(live.sessions.len(), 2, "{live:?}");
    for (id, label) in [(ALPHA_ID, "alpha"), (BETA_ID, "beta")] {
        let s = live.get(id).expect("live session present");
        assert_eq!(s.label, label);
        assert_eq!(s.steps, STEPS as u64);
    }
    assert_eq!(live.unattributed_events, 0, "{live:?}");

    telemetry::shutdown();
    let text = std::fs::read_to_string(&path).expect("log readable");
    let _ = std::fs::remove_file(&path);

    let mut offline = telemetry::SessionAggregator::new();
    let mut starts = (0u64, 0u64);
    let mut ends = (0u64, 0u64);
    let mut steps = (0u64, 0u64);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value: serde::Value = serde_json::from_str(line).expect("valid JSONL");
        offline.observe_value(&value);
        let event = value
            .get("event")
            .and_then(|v| v.as_str())
            .expect("event name")
            .to_string();
        if event == "telemetry.flush" {
            continue;
        }
        // Exact partition: every event belongs to exactly one session.
        let sid = value
            .get("session_id")
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("unattributed event in stream: {line}"));
        assert!(sid == ALPHA_ID || sid == BETA_ID, "{line}");
        // No leakage: a tuner's events carry its session's id only.
        if let Some(tuner) = value.get("tuner").and_then(|v| v.as_str()) {
            let expect = if tuner == "alpha-tuner" {
                ALPHA_ID
            } else {
                assert_eq!(tuner, "beta-tuner", "{line}");
                BETA_ID
            };
            assert_eq!(sid, expect, "cross-session leak: {line}");
        }
        let slot = |pair: &mut (u64, u64)| {
            if sid == ALPHA_ID {
                pair.0 += 1
            } else {
                pair.1 += 1
            }
        };
        match event.as_str() {
            "session.start" => slot(&mut starts),
            "session.end" => slot(&mut ends),
            "online.step" => slot(&mut steps),
            _ => {}
        }
    }
    assert_eq!(starts, (1, 1), "one session.start per session");
    assert_eq!(ends, (1, 1), "one session.end per session");
    assert_eq!(steps, (STEPS as u64, STEPS as u64));

    // The offline re-fold of the stream agrees with the live rollup.
    let report = offline.report();
    assert_eq!(report.unattributed_events, 0, "{report:?}");
    for (id, live_s) in [(ALPHA_ID, live.get(ALPHA_ID)), (BETA_ID, live.get(BETA_ID))] {
        let off = report.get(id).expect("offline session present");
        let live_s = live_s.expect("live session present");
        assert_eq!(off.steps, live_s.steps);
        assert_eq!(off.label, live_s.label);
        assert!((off.reward_sum - live_s.reward_sum).abs() < 1e-9);
    }
}
