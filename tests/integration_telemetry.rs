//! End-to-end telemetry check: one online tuning session must emit the
//! expected event families (`online.step` spans, `twinq.decision`,
//! `budget.update`) and their fields must agree with the [`StepRecord`]s
//! the session returns. Runs as its own test binary so the global sink
//! install cannot race other tests.

use deepcat::{online_tune_td3, train_td3, AgentConfig, OfflineConfig, OnlineConfig, TuningEnv};
use spark_sim::{Cluster, InputSize, Workload, WorkloadKind};
use std::sync::Arc;
use telemetry::TestSink;

#[test]
fn online_tune_emits_consistent_event_families() {
    let workload = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut env = TuningEnv::for_workload(Cluster::cluster_a(), workload, 21);
    let mut cfg = AgentConfig::for_dims(env.state_dim(), env.action_dim());
    cfg.hidden = vec![32, 32];
    cfg.warmup_steps = 64;
    cfg.batch_size = 32;

    let sink = Arc::new(TestSink::new());
    telemetry::reset_metrics();
    telemetry::install(Arc::clone(&sink) as Arc<dyn telemetry::Sink>);

    let (mut agent, _, _) = train_td3(&mut env, cfg, &OfflineConfig::deepcat(400, 9), &[]);
    assert!(
        sink.count("offline.iter") > 0,
        "offline training must emit offline.iter events"
    );
    sink.clear(); // keep only the online session's events below

    let oc = OnlineConfig::deepcat(1);
    let report = online_tune_td3(&mut agent, &mut env, &oc, "DeepCAT");
    telemetry::shutdown();

    // One online.step span event per executed step, in order, and every
    // field must match the StepRecord for that step.
    let steps = sink.events_named("online.step");
    assert_eq!(steps.len(), report.steps.len());
    assert_eq!(steps.len(), oc.steps);
    for (ev, rec) in steps.iter().zip(&report.steps) {
        assert_eq!(ev.u64("step"), Some(rec.step as u64));
        assert_eq!(ev.str("tuner"), Some("DeepCAT"));
        assert_eq!(ev.f64("reward"), Some(rec.reward));
        assert_eq!(ev.f64("exec_time_s"), Some(rec.exec_time_s));
        assert_eq!(ev.f64("recommendation_s"), Some(rec.recommendation_s));
        assert_eq!(ev.bool("failed"), Some(rec.failed));
        assert_eq!(
            ev.u64("twinq_iterations"),
            Some(rec.twinq_iterations as u64)
        );
        assert_eq!(ev.f64("q_estimate"), rec.q_estimate);
        let d = ev.f64("duration_s").expect("span events carry duration_s");
        assert!(d >= 0.0);
    }

    // DeepCAT runs the Twin-Q Optimizer on every step.
    assert_eq!(sink.count("twinq.decision"), oc.steps);
    let skipped: u64 = sink
        .events_named("twinq.decision")
        .iter()
        .map(|e| e.u64("iterations").unwrap())
        .sum();
    let from_records: usize = report.steps.iter().map(|s| s.twinq_iterations).sum();
    assert_eq!(skipped, from_records as u64);

    // budget.update tracks cumulative cost; the last one equals the
    // report's total tuning cost.
    let budget = sink.events_named("budget.update");
    assert_eq!(budget.len(), oc.steps);
    let spent = budget.last().unwrap().f64("spent_s").unwrap();
    assert!(
        (spent - report.total_cost_s()).abs() < 1e-6,
        "spent_s {spent} vs total_cost_s {}",
        report.total_cost_s()
    );

    // Metrics side: counters and the span-duration histogram moved.
    let snap = telemetry::registry_snapshot();
    assert_eq!(snap.counter("online.steps"), oc.steps as u64);
    assert!(
        snap.counter("sim.runs") > 0,
        "every evaluation runs the simulator"
    );
    let h = snap
        .histogram("online.step.duration_s")
        .expect("span histogram exists");
    assert_eq!(h.count, oc.steps as u64);
    assert!(snap.gauge("budget.spent_s").is_some());
}
