//! Reproducibility: identical seeds must give bit-identical results across
//! the whole stack (simulator, training, online tuning).

use deepcat::{train_td3, AgentConfig, OfflineConfig, TuningEnv};
use spark_sim::{Cluster, InputSize, SparkEnv, Workload, WorkloadKind};

#[test]
fn simulator_is_deterministic() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D2);
    let mut a = SparkEnv::new(Cluster::cluster_a(), w, 77);
    let mut b = SparkEnv::new(Cluster::cluster_a(), w, 77);
    let action = vec![0.6; 32];
    for _ in 0..5 {
        let ra = a.evaluate_action(&action);
        let rb = b.evaluate_action(&action);
        assert_eq!(ra.exec_time_s, rb.exec_time_s);
        assert_eq!(ra.metrics, rb.metrics);
    }
}

#[test]
fn training_is_deterministic() {
    let w = Workload::new(WorkloadKind::WordCount, InputSize::D1);
    let run = || {
        let mut env = TuningEnv::for_workload(Cluster::cluster_a(), w, 88);
        let mut ac = AgentConfig::for_dims(env.state_dim(), env.action_dim());
        ac.hidden = vec![16, 16];
        ac.warmup_steps = 32;
        ac.batch_size = 16;
        let (agent, log, _) = train_td3(&mut env, ac, &OfflineConfig::deepcat(200, 5), &[]);
        (
            agent.select_action(&env.reset()),
            log.records.last().unwrap().reward,
        )
    };
    let (a1, r1) = run();
    let (a2, r2) = run();
    assert_eq!(a1, a2, "policies must be bit-identical");
    assert_eq!(r1, r2);
}

#[test]
fn different_seeds_differ() {
    let w = Workload::new(WorkloadKind::TeraSort, InputSize::D1);
    let mut a = SparkEnv::new(Cluster::cluster_a(), w, 1);
    let mut b = SparkEnv::new(Cluster::cluster_a(), w, 2);
    let action = vec![0.6; 32];
    assert_ne!(
        a.evaluate_action(&action).exec_time_s,
        b.evaluate_action(&action).exec_time_s
    );
}
